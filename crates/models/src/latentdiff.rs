//! LatentDiff: the centralized latent tabular diffusion model (§III-A) —
//! SiloFuse's single-silo counterpart and upper bound.
//!
//! Stacked training: (1) fit the autoencoder to convergence, (2) encode the
//! dataset into latents, (3) train a Gaussian DDPM on the latents with the
//! x0-prediction objective of Eq. (5). Synthesis denoises Gaussian noise and
//! decodes with the autoencoder's decoder.

use crate::autoencoder::{AutoencoderConfig, TabularAutoencoder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silofuse_checkpoint::{CheckpointError, Checkpointer};
use silofuse_diffusion::backbone::{BackboneConfig, DiffusionBackbone};
use silofuse_diffusion::gaussian::{
    GaussianDdpm, GaussianDiffusion, InvalidChunkRows, Parameterization, SampleRequestError,
};
use silofuse_diffusion::schedule::{NoiseSchedule, ScheduleKind};
use silofuse_nn::Tensor;
use silofuse_observe as observe;
use silofuse_tabular::table::Table;

/// LatentDiff hyperparameters (shared by the E2E baselines).
#[derive(Debug, Clone, Copy)]
pub struct LatentDiffConfig {
    /// Autoencoder architecture.
    pub ae: AutoencoderConfig,
    /// DDPM backbone hidden width (depth 8 per §V-A).
    pub ddpm_hidden: usize,
    /// Diffusion timesteps (paper: 200).
    pub timesteps: usize,
    /// Beta schedule (the paper uses the linear Ho et al. schedule; cosine
    /// is exposed for few-step regimes).
    pub schedule: ScheduleKind,
    /// DDPM learning rate.
    pub ddpm_lr: f32,
    /// Autoencoder training steps.
    pub ae_steps: usize,
    /// DDPM training steps.
    pub diffusion_steps: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Reverse-process steps at synthesis (paper: 25).
    pub inference_steps: usize,
    /// Sampling stochasticity (0 = DDIM, 1 = ancestral).
    pub eta: f32,
    /// Standard deviation of Gaussian noise added to latents before the
    /// diffusion model sees them (relative to the standardised latent
    /// scale). `0.0` = the paper's protocol; positive values implement the
    /// differential-privacy-style noising the paper's conclusion discusses,
    /// trading quality for privacy. In the distributed model the noise is
    /// added *client-side before upload*.
    pub latent_noise_std: f32,
    /// Train the latent DDPM to predict noise (`true`) instead of the
    /// paper's x0-prediction objective of Eq. (5) (`false`). Ablation knob.
    pub predict_noise: bool,
    /// Standardise latents before diffusion (the latent-diffusion scale
    /// trick; on by default). Ablation knob.
    pub scale_latents: bool,
    /// Rows per streamed synthesis chunk: generation holds peak memory at
    /// `O(synth_chunk_rows × latent_dim)` no matter how many rows are
    /// requested. The output is bit-identical for any value (every row owns
    /// a derived RNG stream); this is purely a memory/throughput knob.
    pub synth_chunk_rows: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for LatentDiffConfig {
    fn default() -> Self {
        Self {
            ae: AutoencoderConfig::default(),
            ddpm_hidden: 256,
            timesteps: 200,
            schedule: ScheduleKind::Linear,
            ddpm_lr: 1e-3,
            ae_steps: 400,
            diffusion_steps: 600,
            batch_size: 256,
            inference_steps: 25,
            eta: 1.0,
            latent_noise_std: 0.0,
            predict_noise: false,
            scale_latents: true,
            synth_chunk_rows: 8192,
            seed: 0,
        }
    }
}

/// Per-dimension latent standardisation so the DDPM sees unit-scale data
/// (the latent-diffusion "scale factor" trick). Public because the
/// distributed SiloFuse coordinator applies the same trick to the
/// concatenated cross-silo latents.
#[derive(Debug, Clone)]
pub struct LatentScaler {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl LatentScaler {
    /// An identity scaler (mean 0, std 1 per column).
    pub fn identity(cols: usize) -> Self {
        Self { mean: vec![0.0; cols], std: vec![1.0; cols] }
    }

    /// Rebuilds a scaler from its parts (e.g. from a pipeline checkpoint).
    ///
    /// # Panics
    /// Panics if `mean` and `std` lengths differ.
    pub fn from_parts(mean: Vec<f32>, std: Vec<f32>) -> Self {
        assert_eq!(mean.len(), std.len(), "mean/std length mismatch");
        Self { mean, std }
    }

    /// Per-column means.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Per-column standard deviations.
    pub fn std(&self) -> &[f32] {
        &self.std
    }

    /// Fits per-column mean/std on a latent matrix.
    pub fn fit(latents: &Tensor) -> Self {
        let mean = latents.mean_rows();
        let mut std = vec![0.0f32; latents.cols()];
        for r in 0..latents.rows() {
            for (c, &v) in latents.row(r).iter().enumerate() {
                let d = v - mean[c];
                std[c] += d * d;
            }
        }
        for s in &mut std {
            *s = (*s / latents.rows().max(1) as f32).sqrt().max(1e-6);
        }
        Self { mean, std }
    }

    /// Standardises latents column-wise.
    pub fn scale(&self, latents: &Tensor) -> Tensor {
        let mut out = latents.clone();
        for r in 0..out.rows() {
            for (c, v) in out.row_mut(r).iter_mut().enumerate() {
                *v = (*v - self.mean[c]) / self.std[c];
            }
        }
        out
    }

    /// Inverts [`LatentScaler::scale`].
    pub fn unscale(&self, latents: &Tensor) -> Tensor {
        let mut out = latents.clone();
        for r in 0..out.rows() {
            for (c, v) in out.row_mut(r).iter_mut().enumerate() {
                *v = *v * self.std[c] + self.mean[c];
            }
        }
        out
    }
}

struct Fitted {
    ae: TabularAutoencoder,
    ddpm: GaussianDdpm,
    scaler: LatentScaler,
    inference_steps: usize,
    eta: f32,
}

/// The centralized latent diffusion synthesizer.
pub struct LatentDiff {
    config: LatentDiffConfig,
    ckpt: Checkpointer,
    fitted: Option<Fitted>,
}

impl std::fmt::Debug for LatentDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LatentDiff(fitted={})", self.fitted.is_some())
    }
}

impl LatentDiff {
    /// Creates an unfitted model.
    pub fn new(config: LatentDiffConfig) -> Self {
        Self { config, ckpt: Checkpointer::disabled(), fitted: None }
    }

    /// Installs a checkpointer: subsequent [`LatentDiff::try_fit`] calls
    /// periodically persist per-phase training state under it, and resume
    /// from it when resume is enabled.
    pub fn set_checkpointer(&mut self, ckpt: Checkpointer) {
        self.ckpt = ckpt;
    }

    /// Stacked two-phase training on `table`.
    ///
    /// # Panics
    /// Panics if a configured checkpointer fails; use
    /// [`LatentDiff::try_fit`] to handle checkpoint errors.
    pub fn fit(&mut self, table: &Table, rng: &mut StdRng) {
        self.try_fit(table, rng).expect("checkpoint failure during LatentDiff::fit");
    }

    /// Stacked two-phase training with crash-safe checkpointing: phase
    /// `ae-train` checkpoints as `latentdiff-ae`, phase `latent-train` as
    /// `latentdiff-ddpm`. On resume, completed phases fast-forward from
    /// their final checkpoint (restoring the RNG stream) and the
    /// interrupted phase continues from its last saved step.
    ///
    /// # Errors
    /// Propagates checkpoint I/O or decode failures, a corrupt/mismatched
    /// saved state, or an injected [`CheckpointError::Crashed`].
    pub fn try_fit(&mut self, table: &Table, rng: &mut StdRng) -> Result<(), CheckpointError> {
        // The whole fit pipeline — including the encode pass that produces
        // the latents the DDPM trains on — stays full-precision f32.
        let _f32 = silofuse_nn::backend::force_f32();
        let cfg = self.config;
        let ckpt = self.ckpt.clone();
        // Phase 1: autoencoder.
        let mut ae = TabularAutoencoder::new(table, cfg.ae);
        {
            let _phase = observe::phase("ae-train");
            ae.fit_resumable(
                table,
                cfg.ae_steps,
                cfg.batch_size,
                rng,
                &ckpt,
                "latentdiff-ae",
                "ae-train",
            )?;
        }

        // Phase 2: DDPM on (standardised) latents.
        let latents = {
            let _phase = observe::phase("encode");
            ae.encode(table)
        };
        let scaler = if cfg.scale_latents {
            LatentScaler::fit(&latents)
        } else {
            LatentScaler::identity(latents.cols())
        };
        let mut z = scaler.scale(&latents);
        if cfg.latent_noise_std > 0.0 {
            let noise = silofuse_nn::init::randn(z.rows(), z.cols(), rng);
            z.add_scaled(&noise, cfg.latent_noise_std);
        }

        let mut init_rng = StdRng::seed_from_u64(cfg.seed ^ 0xddb1);
        let backbone = DiffusionBackbone::new(
            BackboneConfig {
                data_dim: z.cols(),
                hidden_dim: cfg.ddpm_hidden,
                depth: 8,
                time_embed_dim: 16,
                dropout: 0.01,
                out_dim: z.cols(),
            },
            cfg.seed,
            &mut init_rng,
        );
        let schedule = NoiseSchedule::new(cfg.schedule, cfg.timesteps);
        let parameterization = if cfg.predict_noise {
            Parameterization::PredictNoise
        } else {
            Parameterization::PredictX0
        };
        let diffusion = GaussianDiffusion::new(schedule, parameterization);
        let mut ddpm = GaussianDdpm::new(diffusion, backbone, cfg.ddpm_lr);

        {
            let _phase = observe::phase("latent-train");
            ddpm.fit_latent(
                &z,
                cfg.diffusion_steps,
                cfg.batch_size,
                cfg.ddpm_lr,
                rng,
                &ckpt,
                "latentdiff-ddpm",
                "latent-train",
            )?;
        }

        self.fitted =
            Some(Fitted { ae, ddpm, scaler, inference_steps: cfg.inference_steps, eta: cfg.eta });
        Ok(())
    }

    /// The fitted output schema, or `None` before [`LatentDiff::fit`].
    /// The serving layer hands this to tenants so streamed row grids can
    /// be reassembled into typed tables.
    pub fn schema(&self) -> Option<&silofuse_tabular::Schema> {
        self.fitted.as_ref().map(|f| f.ae.table_encoder().schema())
    }

    /// Generates `n` synthetic rows.
    ///
    /// # Panics
    /// Panics if called before [`LatentDiff::fit`].
    pub fn synthesize(&mut self, n: usize, rng: &mut StdRng) -> Table {
        self.synthesize_with_steps(n, None, rng)
    }

    /// Generates `n` rows with an explicit inference-step override (used by
    /// the Table VII privacy-sensitivity experiment).
    ///
    /// # Panics
    /// Panics if the step override is zero or exceeds the schedule length;
    /// use [`LatentDiff::try_synthesize_with_steps`] for a typed error.
    pub fn synthesize_with_steps(
        &mut self,
        n: usize,
        inference_steps: Option<usize>,
        rng: &mut StdRng,
    ) -> Table {
        self.try_synthesize_with_steps(n, inference_steps, rng).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`LatentDiff::synthesize_with_steps`]: generation streams in
    /// chunks of [`LatentDiffConfig::synth_chunk_rows`] through the batched
    /// reverse-diffusion engine, decoding each chunk as it lands so peak
    /// memory stays bounded by the chunk size.
    ///
    /// # Errors
    /// [`SampleRequestError`] when the step count is zero or exceeds `T`,
    /// or when [`LatentDiffConfig::synth_chunk_rows`] is zero. A zero
    /// chunk size used to be silently clamped to 1; it is now rejected at
    /// the request boundary so a bad request cannot quietly change
    /// chunking behavior.
    ///
    /// # Panics
    /// Panics if called before [`LatentDiff::fit`].
    pub fn try_synthesize_with_steps(
        &mut self,
        n: usize,
        inference_steps: Option<usize>,
        rng: &mut StdRng,
    ) -> Result<Table, SampleRequestError> {
        if self.config.synth_chunk_rows == 0 {
            return Err(InvalidChunkRows.into());
        }
        let chunk_rows = self.config.synth_chunk_rows;
        let fitted = self.fitted.as_mut().expect("LatentDiff::fit must be called first");
        let steps = inference_steps.unwrap_or(fitted.inference_steps);
        let base = rng.gen::<u64>();
        Self::synthesize_range_inner(fitted, 0, n, steps, chunk_rows, base)
    }

    /// Cursor-range synthesis with an explicit base seed: decodes only
    /// rows `start_row .. start_row + rows` of the deterministic row
    /// stream `base` defines. Fetching `[0, k)` now and `[k, n)` later is
    /// byte-identical to one `try_synthesize_with_steps(n)` call that
    /// drew the same base — the serving layer's pagination entry point.
    ///
    /// # Errors
    /// [`SampleRequestError`] as for [`LatentDiff::try_synthesize_with_steps`].
    ///
    /// # Panics
    /// Panics if called before [`LatentDiff::fit`].
    pub fn try_synthesize_range(
        &mut self,
        start_row: usize,
        rows: usize,
        base: u64,
    ) -> Result<Table, SampleRequestError> {
        if self.config.synth_chunk_rows == 0 {
            return Err(InvalidChunkRows.into());
        }
        let chunk_rows = self.config.synth_chunk_rows;
        let fitted = self.fitted.as_mut().expect("LatentDiff::fit must be called first");
        let steps = fitted.inference_steps;
        Self::synthesize_range_inner(fitted, start_row, rows, steps, chunk_rows, base)
    }

    fn synthesize_range_inner(
        fitted: &mut Fitted,
        start_row: usize,
        rows: usize,
        steps: usize,
        chunk_rows: usize,
        base: u64,
    ) -> Result<Table, SampleRequestError> {
        let mut sampler = fitted.ddpm.chunked_sampler_range_from_base(
            start_row, rows, steps, fitted.eta, chunk_rows, base,
        )?;
        let mut parts: Vec<Table> = Vec::with_capacity(sampler.total_chunks());
        loop {
            let chunk = {
                let _phase = observe::phase("sample");
                sampler.next_chunk()
            };
            let Some((_, z)) = chunk else { break };
            let latents = fitted.scaler.unscale(&z);
            silofuse_nn::workspace::recycle(z);
            let _phase = observe::phase("decode");
            parts.push(fitted.ae.decode(&latents));
        }
        if parts.is_empty() {
            // rows == 0: decode an empty latent batch so the schema survives.
            let latent_dim = fitted.scaler.mean().len();
            return Ok(fitted.ae.decode(&Tensor::zeros(0, latent_dim)));
        }
        let refs: Vec<&Table> = parts.iter().collect();
        Ok(Table::concat_rows(&refs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silofuse_tabular::profiles;

    fn quick_config(seed: u64) -> LatentDiffConfig {
        LatentDiffConfig {
            ae: AutoencoderConfig { hidden_dim: 96, lr: 2e-3, seed, ..Default::default() },
            ddpm_hidden: 96,
            timesteps: 50,
            ae_steps: 250,
            diffusion_steps: 300,
            batch_size: 128,
            inference_steps: 10,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn fit_and_synthesize_schema_round_trip() {
        let t = profiles::loan().generate(256, 0);
        let mut model = LatentDiff::new(quick_config(0));
        let mut rng = StdRng::seed_from_u64(0);
        model.fit(&t, &mut rng);
        let s = model.synthesize(64, &mut rng);
        assert_eq!(s.n_rows(), 64);
        assert_eq!(s.schema(), t.schema());
    }

    #[test]
    fn synthetic_numerics_have_plausible_scale() {
        let t = profiles::diabetes().generate(384, 1);
        let mut model = LatentDiff::new(quick_config(1));
        let mut rng = StdRng::seed_from_u64(1);
        model.fit(&t, &mut rng);
        let s = model.synthesize(256, &mut rng);
        for &col in &t.schema().numeric_indices() {
            let orig = t.column(col).as_numeric().unwrap();
            let synth = s.column(col).as_numeric().unwrap();
            let om = orig.iter().sum::<f64>() / orig.len() as f64;
            let sm = synth.iter().sum::<f64>() / synth.len() as f64;
            let ostd =
                (orig.iter().map(|v| (v - om) * (v - om)).sum::<f64>() / orig.len() as f64).sqrt();
            assert!(
                (om - sm).abs() < 3.0 * ostd.max(1e-6),
                "col {col}: mean {om} vs synthetic {sm} (std {ostd})"
            );
        }
    }

    #[test]
    fn latent_scaler_round_trips() {
        let mut rng = StdRng::seed_from_u64(2);
        let z = silofuse_nn::init::randn(64, 5, &mut rng).map(|v| v * 7.0 + 3.0);
        let scaler = LatentScaler::fit(&z);
        let scaled = scaler.scale(&z);
        // Standardised: per-column mean ~0.
        for m in scaled.mean_rows() {
            assert!(m.abs() < 0.2, "mean {m}");
        }
        let back = scaler.unscale(&scaled);
        for (a, b) in back.as_slice().iter().zip(z.as_slice()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn cosine_schedule_variant_also_synthesizes() {
        let t = profiles::diabetes().generate(128, 6);
        let mut cfg = quick_config(6);
        cfg.ae_steps = 30;
        cfg.diffusion_steps = 30;
        cfg.schedule = silofuse_diffusion::ScheduleKind::Cosine;
        let mut model = LatentDiff::new(cfg);
        let mut rng = StdRng::seed_from_u64(6);
        model.fit(&t, &mut rng);
        let s = model.synthesize(16, &mut rng);
        assert_eq!(s.schema(), t.schema());
    }

    #[test]
    fn noise_prediction_variant_also_synthesizes() {
        let t = profiles::diabetes().generate(192, 4);
        let mut cfg = quick_config(4);
        cfg.predict_noise = true;
        let mut model = LatentDiff::new(cfg);
        let mut rng = StdRng::seed_from_u64(4);
        model.fit(&t, &mut rng);
        let s = model.synthesize(32, &mut rng);
        assert_eq!(s.schema(), t.schema());
    }

    #[test]
    fn latent_noise_knob_changes_what_the_model_learns() {
        // The DP-style knob must actually perturb training: models fitted
        // with and without noise produce different synthetic data from the
        // same RNG stream. (The quality/privacy *trend* is exercised by the
        // `ablation` experiment binary, where budgets are large enough for
        // the direction to be stable.)
        let t = profiles::diabetes().generate(192, 5);
        let sample = |noise: f32| {
            let mut cfg = quick_config(5);
            cfg.ae_steps = 60;
            cfg.diffusion_steps = 60;
            cfg.latent_noise_std = noise;
            let mut model = LatentDiff::new(cfg);
            let mut rng = StdRng::seed_from_u64(5);
            model.fit(&t, &mut rng);
            let mut srng = StdRng::seed_from_u64(99);
            model.synthesize(64, &mut srng)
        };
        let clean = sample(0.0);
        let noisy = sample(1.5);
        assert_ne!(clean, noisy);
        assert_eq!(clean.schema(), noisy.schema());
    }

    #[test]
    fn crash_in_either_phase_resumes_bit_identically() {
        use silofuse_checkpoint::CrashPoint;
        let t = profiles::loan().generate(192, 8);
        let mut cfg = quick_config(8);
        cfg.ae_steps = 30;
        cfg.diffusion_steps = 30;
        cfg.latent_noise_std = 0.5; // exercise the rng draw between phases

        // Uninterrupted baseline.
        let mut clean = LatentDiff::new(cfg);
        let mut rng_clean = StdRng::seed_from_u64(31);
        clean.fit(&t, &mut rng_clean);
        let state_after_fit = rng_clean.state();
        let sample_clean = clean.synthesize(24, &mut rng_clean);

        for crash_at in ["ae-train:13", "latent-train:17"] {
            let dir = std::env::temp_dir().join(format!(
                "silofuse-ld-crash-{}-{}",
                std::process::id(),
                crash_at.replace(':', "-")
            ));
            std::fs::remove_dir_all(&dir).ok();
            let mut victim = LatentDiff::new(cfg);
            victim.set_checkpointer(
                Checkpointer::new(&dir, 5).with_crash(Some(CrashPoint::parse(crash_at).unwrap())),
            );
            let mut rng = StdRng::seed_from_u64(31);
            let err = victim.try_fit(&t, &mut rng);
            assert!(matches!(err, Err(CheckpointError::Crashed { .. })), "{crash_at}");
            drop(victim); // the "process" died

            let mut revived = LatentDiff::new(cfg);
            revived.set_checkpointer(Checkpointer::new(&dir, 5).with_resume(true));
            let mut rng2 = StdRng::seed_from_u64(999);
            revived.try_fit(&t, &mut rng2).unwrap();
            assert_eq!(rng2.state(), state_after_fit, "{crash_at}: rng stream diverged");
            let sample_resumed = revived.synthesize(24, &mut rng2);
            assert_eq!(sample_resumed, sample_clean, "{crash_at}: output diverged");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    #[should_panic(expected = "fit must be called")]
    fn synthesize_before_fit_panics() {
        let mut model = LatentDiff::new(quick_config(3));
        let mut rng = StdRng::seed_from_u64(3);
        let _ = model.synthesize(4, &mut rng);
    }
}
