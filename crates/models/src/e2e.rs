//! E2E: the end-to-end centralized baseline (Fig. 8).
//!
//! The autoencoder and the DDPM train *jointly*: every step the encoder
//! produces latents, the DDPM noises/denoises them (contributing `L_G` and a
//! gradient back into the latents), the decoder reconstructs (contributing
//! `L_AE`), and the summed latent gradient flows into the encoder. This is
//! the scheme the paper shows underperforms stacked training — early in
//! training the DDPM adds noise to latents that are themselves still noise.

use crate::autoencoder::TabularAutoencoder;
use crate::latentdiff::LatentDiffConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silofuse_diffusion::backbone::{BackboneConfig, DiffusionBackbone};
use silofuse_diffusion::gaussian::{GaussianDdpm, GaussianDiffusion, Parameterization};
use silofuse_diffusion::schedule::NoiseSchedule;
use silofuse_tabular::table::Table;

struct Fitted {
    ae: TabularAutoencoder,
    ddpm: GaussianDdpm,
    inference_steps: usize,
    eta: f32,
}

/// Per-step losses of the joint objective `L = L_G + L_AE`.
#[derive(Debug, Clone, Copy)]
pub struct E2eLosses {
    /// Diffusion loss `L_G` (Eq. 5).
    pub diffusion: f32,
    /// Reconstruction loss `L_AE` (Eq. 4).
    pub reconstruction: f32,
}

/// The end-to-end centralized synthesizer.
pub struct E2eCentralized {
    config: LatentDiffConfig,
    fitted: Option<Fitted>,
}

impl std::fmt::Debug for E2eCentralized {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "E2eCentralized(fitted={})", self.fitted.is_some())
    }
}

impl E2eCentralized {
    /// Creates an unfitted model. Reuses [`LatentDiffConfig`]; the
    /// autoencoder and DDPM train jointly for
    /// `ae_steps + diffusion_steps` combined steps so the total gradient
    /// budget matches the stacked models.
    pub fn new(config: LatentDiffConfig) -> Self {
        Self { config, fitted: None }
    }

    /// Joint training on `table`.
    pub fn fit(&mut self, table: &Table, rng: &mut StdRng) {
        // Training math must never route through a reduced-precision
        // backend: pin dispatch to f32 for the duration of this fit.
        let _f32 = silofuse_nn::backend::force_f32();
        let cfg = self.config;
        let mut ae = TabularAutoencoder::new(table, cfg.ae);
        let latent_dim = ae.latent_dim();

        let mut init_rng = StdRng::seed_from_u64(cfg.seed ^ 0xe2e);
        let backbone = DiffusionBackbone::new(
            BackboneConfig {
                data_dim: latent_dim,
                hidden_dim: cfg.ddpm_hidden,
                depth: 8,
                time_embed_dim: 16,
                dropout: 0.01,
                out_dim: latent_dim,
            },
            cfg.seed,
            &mut init_rng,
        );
        let schedule = NoiseSchedule::new(cfg.schedule, cfg.timesteps);
        let diffusion = GaussianDiffusion::new(schedule, Parameterization::PredictX0);
        let mut ddpm = GaussianDdpm::new(diffusion, backbone, cfg.ddpm_lr);

        let n = table.n_rows();
        let total_steps = cfg.ae_steps + cfg.diffusion_steps;
        for _ in 0..total_steps {
            let idx: Vec<usize> = (0..cfg.batch_size.min(n)).map(|_| rng.gen_range(0..n)).collect();
            let batch = table.select_rows(&idx);
            let _ = Self::joint_step(&mut ae, &mut ddpm, &batch, rng);
        }

        self.fitted = Some(Fitted { ae, ddpm, inference_steps: cfg.inference_steps, eta: cfg.eta });
    }

    /// One joint optimisation step; exposed for tests and the distributed
    /// E2E variant.
    pub(crate) fn joint_step(
        ae: &mut TabularAutoencoder,
        ddpm: &mut GaussianDdpm,
        batch: &Table,
        rng: &mut StdRng,
    ) -> E2eLosses {
        ae.zero_grad();
        let z = ae.encoder_forward_train(batch);
        // DDPM branch: trains the backbone and returns dL_G/dz.
        let step = ddpm.train_step_with_input_grad(&z, rng);
        // Decoder branch: reconstruction loss and dL_AE/dz.
        let (recon_loss, grad_z_dec) = ae.decoder_loss_backward(&z, batch);
        // Joint latent gradient into the encoder.
        let grad_z = step.input_grad.add(&grad_z_dec);
        ae.encoder_backward(&grad_z);
        ae.opt_step();
        E2eLosses { diffusion: step.loss, reconstruction: recon_loss }
    }

    /// Generates `n` synthetic rows, streaming the batched sampler in
    /// chunks of [`LatentDiffConfig::synth_chunk_rows`] so memory stays
    /// bounded by the chunk size.
    ///
    /// # Panics
    /// Panics if called before [`E2eCentralized::fit`], or if
    /// [`LatentDiffConfig::synth_chunk_rows`] is zero (the typed
    /// [`silofuse_diffusion::gaussian::SampleRequestError`] surfaces
    /// through this panicking convenience API).
    pub fn synthesize(&mut self, n: usize, rng: &mut StdRng) -> Table {
        let chunk_rows = self.config.synth_chunk_rows;
        let fitted = self.fitted.as_mut().expect("E2eCentralized::fit must be called first");
        let mut sampler = fitted
            .ddpm
            .chunked_sampler(n, fitted.inference_steps, fitted.eta, chunk_rows, rng)
            .unwrap_or_else(|e| panic!("{e}"));
        let mut parts: Vec<Table> = Vec::with_capacity(sampler.total_chunks());
        while let Some((_, z)) = sampler.next_chunk() {
            parts.push(fitted.ae.decode(&z));
            silofuse_nn::workspace::recycle(z);
        }
        if parts.is_empty() {
            let latent_dim = fitted.ae.latent_dim();
            return fitted.ae.decode(&silofuse_nn::Tensor::zeros(0, latent_dim));
        }
        let refs: Vec<&Table> = parts.iter().collect();
        Table::concat_rows(&refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoencoder::AutoencoderConfig;
    use silofuse_tabular::profiles;

    fn quick_config(seed: u64) -> LatentDiffConfig {
        LatentDiffConfig {
            ae: AutoencoderConfig { hidden_dim: 96, lr: 1e-3, seed, ..Default::default() },
            ddpm_hidden: 96,
            timesteps: 50,
            ae_steps: 150,
            diffusion_steps: 150,
            batch_size: 128,
            inference_steps: 10,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn joint_training_and_synthesis() {
        let t = profiles::loan().generate(256, 0);
        let mut model = E2eCentralized::new(quick_config(0));
        let mut rng = StdRng::seed_from_u64(0);
        model.fit(&t, &mut rng);
        let s = model.synthesize(32, &mut rng);
        assert_eq!(s.n_rows(), 32);
        assert_eq!(s.schema(), t.schema());
    }

    #[test]
    fn joint_step_reduces_reconstruction_loss() {
        let t = profiles::diabetes().generate(256, 1);
        let cfg = quick_config(1);
        let mut ae = TabularAutoencoder::new(&t, cfg.ae);
        let mut init_rng = StdRng::seed_from_u64(9);
        let backbone = DiffusionBackbone::new(
            BackboneConfig {
                data_dim: ae.latent_dim(),
                hidden_dim: 64,
                depth: 3,
                time_embed_dim: 8,
                dropout: 0.0,
                out_dim: ae.latent_dim(),
            },
            9,
            &mut init_rng,
        );
        let schedule = NoiseSchedule::new(silofuse_diffusion::ScheduleKind::Linear, 30);
        let mut ddpm = GaussianDdpm::new(
            GaussianDiffusion::new(schedule, Parameterization::PredictX0),
            backbone,
            1e-3,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let first = E2eCentralized::joint_step(&mut ae, &mut ddpm, &t, &mut rng);
        for _ in 0..200 {
            let _ = E2eCentralized::joint_step(&mut ae, &mut ddpm, &t, &mut rng);
        }
        let last = E2eCentralized::joint_step(&mut ae, &mut ddpm, &t, &mut rng);
        assert!(
            last.reconstruction < first.reconstruction,
            "recon loss did not fall: {} -> {}",
            first.reconstruction,
            last.reconstruction
        );
    }
}
