//! Schema → sparse-layer glue shared by the model crates.
//!
//! [`silofuse_tabular::SparseBatch`] and the nn-side
//! [`silofuse_nn::sparse::SparseSpec`] describe the same one-hot layout from
//! two sides (encoder output vs. layer input); this module derives the spec
//! from a fitted schema and bridges batch buffers into layer-ready views so
//! the two crates stay decoupled.

use silofuse_nn::sparse::{SparseBatchRef, SparseField, SparseSpec};
use silofuse_tabular::schema::{ColumnKind, Schema};
use silofuse_tabular::SparseBatch;

/// Derives the sparse input layout of `schema`'s one-hot encoding: numeric
/// columns occupy one slot each, categorical columns a `cardinality`-wide
/// block, in schema order (exactly the `TableEncoder` layout).
pub(crate) fn sparse_spec(schema: &Schema) -> SparseSpec {
    let mut fields = Vec::with_capacity(schema.columns().len());
    let mut offset = 0usize;
    for meta in schema.columns() {
        match meta.kind {
            ColumnKind::Numeric => {
                fields.push(SparseField::Numeric { slot: offset });
                offset += 1;
            }
            ColumnKind::Categorical { cardinality } => {
                let width = cardinality as usize;
                fields.push(SparseField::Categorical { offset, width });
                offset += width;
            }
        }
    }
    SparseSpec::new(fields)
}

/// Borrows an encoded batch as the layer-input view.
pub(crate) fn batch_ref(batch: &SparseBatch) -> SparseBatchRef<'_> {
    SparseBatchRef { rows: batch.rows(), numeric: batch.numeric(), indices: batch.indices() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silofuse_tabular::encode::{ScalingKind, TableEncoder};
    use silofuse_tabular::profiles;

    #[test]
    fn spec_mirrors_encoder_layout() {
        let t = profiles::churn().generate(32, 0);
        let spec = sparse_spec(t.schema());
        let enc = TableEncoder::fit(&t, ScalingKind::Standard);
        assert_eq!(spec.in_width(), enc.encoded_width());
        assert_eq!(spec.n_numeric(), t.schema().numeric_count());
        assert_eq!(spec.n_categorical(), t.schema().categorical_count());
        // Every encoded index must land inside its spec block.
        let mut batch = enc.sparse_batch();
        enc.encode_sparse_into(&t, &mut batch).unwrap();
        batch_ref(&batch).check(&spec);
    }
}
