//! Tabular autoencoder with per-feature distribution heads (§III-B, §IV-A).
//!
//! The encoder maps one-hot + scaled features to a continuous latent; the
//! decoder maps latents to *distribution parameters*: a Gaussian head
//! `(μ, log σ²)` per numeric feature and a softmax head per categorical
//! feature, trained with negative log-likelihood (paper Eq. 4), exactly like
//! the tabular VAE decoders the paper cites.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silofuse_checkpoint::{CheckpointError, Checkpointer};
use silofuse_nn::init::Init;
use silofuse_nn::layers::{
    Activation, ActivationKind, EmbeddingGather, Layer, Linear, Mode, Sequential,
};
use silofuse_nn::loss::{gaussian_nll, grouped_softmax_cross_entropy};
use silofuse_nn::optim::{Adam, Optimizer};
use silofuse_nn::Tensor;
use silofuse_observe as observe;
use silofuse_tabular::encode::{CategoricalTargets, ScalingKind, TableEncoder};
use silofuse_tabular::schema::ColumnKind;
use silofuse_tabular::table::Table;
use silofuse_tabular::{SparseBatch, SparsePolicy};

/// Autoencoder hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct AutoencoderConfig {
    /// Hidden layer width for both encoder and decoder.
    pub hidden_dim: usize,
    /// Latent width. The paper sets this to the number of original
    /// (pre-one-hot) features; pass `None` to use that rule.
    pub latent_dim: Option<usize>,
    /// Adam learning rate.
    pub lr: f32,
    /// Initialisation / dropout seed.
    pub seed: u64,
    /// Batch representation policy: [`SparsePolicy::Auto`] routes
    /// high-expansion schemas through the sparse categorical path
    /// (index+value batches, embedding-gather first layer); `Dense` and
    /// `Sparse` force either path. Both paths train bit-identically.
    pub encoding: SparsePolicy,
}

impl Default for AutoencoderConfig {
    fn default() -> Self {
        Self { hidden_dim: 256, latent_dim: None, lr: 1e-3, seed: 0, encoding: SparsePolicy::Auto }
    }
}

/// Decoder head layout for one table schema.
#[derive(Debug, Clone)]
struct HeadLayout {
    /// Numeric feature count (each uses two head slots: μ and log σ²).
    n_numeric: usize,
    /// Categorical group widths, schema order.
    cat_widths: Vec<usize>,
}

impl HeadLayout {
    fn width(&self) -> usize {
        2 * self.n_numeric + self.cat_widths.iter().sum::<usize>()
    }
}

/// A fitted tabular autoencoder bound to one table schema.
pub struct TabularAutoencoder {
    encoder: Sequential,
    decoder: Sequential,
    enc_opt: Adam,
    dec_opt: Adam,
    table_encoder: TableEncoder,
    /// Reusable sparse batch when the sparse path is active; `None` means
    /// every batch is densified. The buffer is cleared and refilled in
    /// place each step, so steady-state training allocates nothing here.
    sparse: Option<SparseBatch>,
    heads: HeadLayout,
    latent_dim: usize,
    lr: f32,
}

impl std::fmt::Debug for TabularAutoencoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TabularAutoencoder(latent={})", self.latent_dim)
    }
}

/// Targets extracted from a batch for the NLL loss.
struct BatchTargets {
    numeric: Tensor,
    categorical: CategoricalTargets,
}

impl TabularAutoencoder {
    /// Builds an (untrained) autoencoder for `table`'s schema, fitting the
    /// feature scalers on `table`.
    pub fn new(table: &Table, config: AutoencoderConfig) -> Self {
        let table_encoder = TableEncoder::fit(table, ScalingKind::Standard);
        let input_dim = table_encoder.encoded_width();
        let latent_dim = config.latent_dim.unwrap_or_else(|| table.schema().width().max(1));
        let heads = HeadLayout {
            n_numeric: table.schema().numeric_count(),
            cat_widths: table_encoder.categorical_group_widths(),
        };
        let mut rng = StdRng::seed_from_u64(config.seed);
        let h = config.hidden_dim;
        // Three linear layers per side, GELU activations (§V-A). When the
        // schema's one-hot expansion crosses the sparse threshold the first
        // encoder layer is an EmbeddingGather: same parameter layout, same
        // initialiser draws (checkpoints interchange with the dense build),
        // but batches arrive as index+value buffers instead of one-hot.
        let use_sparse = config.encoding.selects_sparse(table.schema());
        let mut encoder = Sequential::new();
        if use_sparse {
            let spec = crate::sparse::sparse_spec(table.schema());
            encoder.add(Box::new(EmbeddingGather::new(spec, h, Init::XavierUniform, &mut rng)));
        } else {
            encoder.add(Box::new(Linear::new(input_dim, h, Init::XavierUniform, &mut rng)));
        }
        let encoder = encoder
            .push(Activation::new(ActivationKind::Gelu))
            .push(Linear::new(h, h, Init::XavierUniform, &mut rng))
            .push(Activation::new(ActivationKind::Gelu))
            .push(Linear::new(h, latent_dim, Init::XavierUniform, &mut rng));
        let decoder = Sequential::new()
            .push(Linear::new(latent_dim, h, Init::XavierUniform, &mut rng))
            .push(Activation::new(ActivationKind::Gelu))
            .push(Linear::new(h, h, Init::XavierUniform, &mut rng))
            .push(Activation::new(ActivationKind::Gelu))
            .push(Linear::new(h, heads.width(), Init::XavierUniform, &mut rng));
        let sparse = use_sparse.then(|| table_encoder.sparse_batch());
        Self {
            encoder,
            decoder,
            enc_opt: Adam::new(config.lr),
            dec_opt: Adam::new(config.lr),
            table_encoder,
            sparse,
            heads,
            latent_dim,
            lr: config.lr,
        }
    }

    /// True when batches are encoded sparsely (index+value buffers).
    pub fn uses_sparse(&self) -> bool {
        self.sparse.is_some()
    }

    /// Bytes held by the most recently encoded sparse batch, or `None` on
    /// the dense path. Scales with nonzeros, not with the one-hot width.
    pub fn sparse_batch_bytes(&self) -> Option<usize> {
        self.sparse.as_ref().map(SparseBatch::batch_bytes)
    }

    /// Latent width `s_i`.
    pub fn latent_dim(&self) -> usize {
        self.latent_dim
    }

    /// The feature encoder fitted at construction.
    pub fn table_encoder(&self) -> &TableEncoder {
        &self.table_encoder
    }

    /// Encodes a table into its *dense* input feature tensor (the one-hot
    /// oracle representation, regardless of the configured encoding policy).
    pub fn features(&self, table: &Table) -> Tensor {
        let data = self.table_encoder.encode(table);
        Tensor::from_vec(table.n_rows(), self.table_encoder.encoded_width(), data)
    }

    fn targets(&self, table: &Table) -> BatchTargets {
        // Numeric targets in *scaled* space so the Gaussian heads see
        // standardised values. `numeric_features` emits exactly the numeric
        // slots of the dense encoding (bitwise), without materialising the
        // one-hot blocks — on wide schemas the dense detour dominated this
        // path's allocation.
        let numeric = Tensor::from_vec(
            table.n_rows(),
            self.heads.n_numeric,
            self.table_encoder.numeric_features(table),
        );
        BatchTargets { numeric, categorical: self.table_encoder.categorical_targets(table) }
    }

    /// Splits head outputs into `(μ, log σ², cat_logits)`.
    fn split_heads(&self, heads: &Tensor) -> (Tensor, Tensor, Tensor) {
        let n = self.heads.n_numeric;
        let cat_w: usize = self.heads.cat_widths.iter().sum();
        let parts = heads.split_cols(&[n, n, cat_w]);
        let mut it = parts.into_iter();
        (it.next().unwrap(), it.next().unwrap(), it.next().unwrap())
    }

    /// NLL loss (Eq. 4) and its gradient with respect to the head outputs.
    fn loss_and_head_grad(&self, heads: &Tensor, targets: &BatchTargets) -> (f32, Tensor) {
        let (mu, log_var, logits) = self.split_heads(heads);
        let mut loss = 0.0f32;
        let mut grads: Vec<Tensor> = Vec::with_capacity(3);
        if self.heads.n_numeric > 0 {
            let (l, g_mu, g_lv) = gaussian_nll(&mu, &log_var, &targets.numeric);
            loss += l;
            grads.push(g_mu);
            grads.push(g_lv);
        } else {
            grads.push(Tensor::zeros(heads.rows(), 0));
            grads.push(Tensor::zeros(heads.rows(), 0));
        }
        if !self.heads.cat_widths.is_empty() {
            let (l, g) = grouped_softmax_cross_entropy(
                &logits,
                &self.heads.cat_widths,
                targets.categorical.as_slice(),
            );
            loss += l;
            grads.push(g);
        } else {
            grads.push(Tensor::zeros(heads.rows(), 0));
        }
        let grad = Tensor::concat_cols(&grads.iter().collect::<Vec<_>>());
        (loss, grad)
    }

    /// Runs the encoder on a batch through whichever representation is
    /// active. The sparse path reuses `self.sparse`'s buffers (no per-step
    /// allocation) and is bit-identical to the dense path for finite
    /// weights — see the backend gather/scatter determinism docs.
    fn encoder_forward(&mut self, table: &Table, mode: Mode) -> Tensor {
        let Self { table_encoder, sparse, encoder, .. } = self;
        match sparse {
            Some(batch) => {
                table_encoder
                    .encode_sparse_into(table, batch)
                    .expect("batch codes already validated against the fitted schema");
                encoder.forward_sparse(crate::sparse::batch_ref(batch), mode)
            }
            None => {
                let x = Tensor::from_vec(
                    table.n_rows(),
                    table_encoder.encoded_width(),
                    table_encoder.encode(table),
                );
                encoder.forward(&x, mode)
            }
        }
    }

    /// One optimisation step on a batch (rows of `table`); returns the loss.
    pub fn train_step(&mut self, batch: &Table) -> f32 {
        let targets = self.targets(batch);
        let z = self.encoder_forward(batch, Mode::Train);
        let heads = self.decoder.forward(&z, Mode::Train);
        let (loss, grad_heads) = self.loss_and_head_grad(&heads, &targets);
        self.encoder.zero_grad();
        self.decoder.zero_grad();
        let grad_z = self.decoder.backward(&grad_heads);
        let _ = self.encoder.backward(&grad_z);
        self.dec_opt.step(&mut self.decoder);
        self.enc_opt.step(&mut self.encoder);
        loss
    }

    /// Trains for `steps` minibatch steps of size `batch_size`.
    pub fn fit(&mut self, table: &Table, steps: usize, batch_size: usize, rng: &mut StdRng) -> f32 {
        self.fit_from(table, 0, steps, batch_size, rng)
    }

    /// Continues training from minibatch step `start` (exclusive upper bound
    /// `steps`), without any checkpointing. Callers that restore model and
    /// RNG state themselves can use this to replay the tail of a run.
    pub fn fit_from(
        &mut self,
        table: &Table,
        start: usize,
        steps: usize,
        batch_size: usize,
        rng: &mut StdRng,
    ) -> f32 {
        self.fit_loop(
            table,
            start.min(steps),
            steps,
            batch_size,
            rng,
            &Checkpointer::disabled(),
            "",
            "",
            &mut |_| {},
        )
        .expect("checkpointing disabled: no I/O or injected crash can fail")
    }

    /// Step-resumable training: periodically checkpoints the full training
    /// state (weights, Adam moments, caller RNG) under `name`, and resumes
    /// from the latest checkpoint when `ckpt` has resume enabled.
    ///
    /// With checkpointing disabled this is bit-identical to
    /// [`TabularAutoencoder::fit`]: checkpoints never consume RNG draws.
    ///
    /// # Errors
    /// Propagates checkpoint I/O or decode failures, a corrupt/mismatched
    /// saved state, or an injected [`CheckpointError::Crashed`].
    #[allow(clippy::too_many_arguments)]
    pub fn fit_resumable(
        &mut self,
        table: &Table,
        steps: usize,
        batch_size: usize,
        rng: &mut StdRng,
        ckpt: &Checkpointer,
        name: &str,
        phase: &str,
    ) -> Result<f32, CheckpointError> {
        self.fit_resumable_observed(table, steps, batch_size, rng, ckpt, name, phase, &mut |_| {})
    }

    /// [`TabularAutoencoder::fit_resumable`] with a per-step observer:
    /// `on_step` is called with the completed-step count after every
    /// training step. The observer consumes no RNG draws and cannot fail,
    /// so the trained weights are bit-identical to the unobserved fit;
    /// callers use it to emit liveness signals (heartbeats) keyed to the
    /// *logical* training clock rather than wall time.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_resumable_observed(
        &mut self,
        table: &Table,
        steps: usize,
        batch_size: usize,
        rng: &mut StdRng,
        ckpt: &Checkpointer,
        name: &str,
        phase: &str,
        on_step: &mut dyn FnMut(u64),
    ) -> Result<f32, CheckpointError> {
        let mut start = 0usize;
        if let Some(saved) = ckpt.load(name, phase)? {
            if saved.payload.len() < 8 {
                return Err(CheckpointError::Truncated);
            }
            let state = u64::from_le_bytes(saved.payload[..8].try_into().unwrap());
            self.import_train_state(&saved.payload[8..]).map_err(CheckpointError::state)?;
            *rng = StdRng::from_state(state);
            start = (saved.step as usize).min(steps);
        } else if ckpt.is_enabled() {
            // Phase-entry checkpoint: a crash before the first periodic save
            // must not resume with an already-advanced RNG.
            let payload = self.snapshot_with_rng(rng);
            ckpt.save(name, phase, 0, &payload)?;
        }
        ckpt.maybe_crash(phase, start as u64)?;
        self.fit_loop(table, start, steps, batch_size, rng, ckpt, name, phase, on_step)
    }

    #[allow(clippy::too_many_arguments)]
    fn fit_loop(
        &mut self,
        table: &Table,
        start: usize,
        steps: usize,
        batch_size: usize,
        rng: &mut StdRng,
        ckpt: &Checkpointer,
        name: &str,
        phase: &str,
        on_step: &mut dyn FnMut(u64),
    ) -> Result<f32, CheckpointError> {
        // Training math must never route through a reduced-precision
        // backend: pin dispatch to f32 for the duration of this fit.
        let _f32 = silofuse_nn::backend::force_f32();
        silofuse_nn::backend::record_telemetry();
        let stride = observe::epoch_stride(steps);
        let n = table.n_rows();
        let mut last = 0.0;
        for step in start..steps {
            let idx: Vec<usize> = (0..batch_size.min(n)).map(|_| rng.gen_range(0..n)).collect();
            let batch = table.select_rows(&idx);
            last = self.train_step(&batch);
            if step % stride == 0 {
                observe::train_epoch(
                    "autoencoder",
                    step as u64,
                    f64::from(last),
                    f64::from(self.lr),
                    batch.n_rows() as u64,
                );
            }
            let done = (step + 1) as u64;
            on_step(done);
            if ckpt.is_enabled() && ckpt.due(done, steps as u64) {
                let payload = self.snapshot_with_rng(rng);
                ckpt.save(name, phase, done, &payload)?;
            }
            ckpt.maybe_crash(phase, done)?;
        }
        Ok(last)
    }

    /// Checkpoint payload: caller RNG state (8 LE bytes) then the train state.
    fn snapshot_with_rng(&mut self, rng: &StdRng) -> Vec<u8> {
        let mut payload = rng.state().to_le_bytes().to_vec();
        payload.extend_from_slice(&self.export_train_state());
        payload
    }

    /// Encodes a table into latents `Z_i = E_i(X_i)` (inference mode).
    pub fn encode(&mut self, table: &Table) -> Tensor {
        self.encoder_forward(table, Mode::Infer)
    }

    /// Decodes latents back into a table: numeric = μ head, categorical =
    /// argmax over logits.
    ///
    /// # Panics
    /// Panics if `latents` width differs from the latent dimension.
    pub fn decode(&mut self, latents: &Tensor) -> Table {
        assert_eq!(latents.cols(), self.latent_dim, "latent width mismatch");
        let heads = self.decoder.forward(latents, Mode::Infer);
        self.heads_to_table(&heads)
    }

    fn heads_to_table(&self, heads: &Tensor) -> Table {
        let (mu, _lv, logits) = self.split_heads(heads);
        // Re-pack into the TableEncoder layout: numeric slot = μ, categorical
        // block = logits (argmax during decode).
        let rows = heads.rows();
        let width = self.table_encoder.encoded_width();
        let mut data = vec![0.0f32; rows * width];
        for r in 0..rows {
            let mut slot = 0;
            let mut num_idx = 0;
            let mut cat_slot = 0;
            let mut cat_idx = 0;
            for meta in self.table_encoder.schema().columns() {
                match meta.kind {
                    ColumnKind::Numeric => {
                        data[r * width + slot] = mu.row(r)[num_idx];
                        num_idx += 1;
                        slot += 1;
                    }
                    ColumnKind::Categorical { cardinality } => {
                        let k = cardinality as usize;
                        data[r * width + slot..r * width + slot + k]
                            .copy_from_slice(&logits.row(r)[cat_slot..cat_slot + k]);
                        cat_slot += k;
                        cat_idx += 1;
                        slot += k;
                    }
                }
            }
            let _ = cat_idx;
        }
        self.table_encoder.decode(&data).expect("head layout matches encoder layout")
    }

    // ------------------------------------------------------------------
    // Raw forward/backward plumbing for the end-to-end baselines.
    // ------------------------------------------------------------------

    /// Encoder forward in training mode (caches for backward). Routes
    /// through the sparse path when active, like [`Self::train_step`].
    pub fn encoder_forward_train(&mut self, table: &Table) -> Tensor {
        self.encoder_forward(table, Mode::Train)
    }

    /// Decoder forward + NLL loss on `batch`, returning the loss and the
    /// gradient with respect to the latent input.
    pub fn decoder_loss_backward(&mut self, z: &Tensor, batch: &Table) -> (f32, Tensor) {
        let targets = self.targets(batch);
        let heads = self.decoder.forward(z, Mode::Train);
        let (loss, grad_heads) = self.loss_and_head_grad(&heads, &targets);
        let grad_z = self.decoder.backward(&grad_heads);
        (loss, grad_z)
    }

    /// Backpropagates a latent gradient through the encoder.
    pub fn encoder_backward(&mut self, grad_z: &Tensor) {
        let _ = self.encoder.backward(grad_z);
    }

    /// Zeroes both networks' gradients.
    pub fn zero_grad(&mut self) {
        self.encoder.zero_grad();
        self.decoder.zero_grad();
    }

    /// Applies one optimizer step to both networks.
    pub fn opt_step(&mut self) {
        self.dec_opt.step(&mut self.decoder);
        self.enc_opt.step(&mut self.encoder);
    }

    /// Exports encoder + decoder weights as a state dict
    /// (`u32 encoder-blob length | encoder blob | decoder blob`). Rebuild
    /// the architecture with [`TabularAutoencoder::new`] on the same schema
    /// and config, then [`TabularAutoencoder::import_weights`].
    pub fn export_weights(&mut self) -> Vec<u8> {
        let enc = silofuse_nn::serialize::export_state_dict(&mut self.encoder);
        let dec = silofuse_nn::serialize::export_state_dict(&mut self.decoder);
        let mut out = Vec::with_capacity(4 + enc.len() + dec.len());
        out.extend_from_slice(&(enc.len() as u32).to_le_bytes());
        out.extend_from_slice(&enc);
        out.extend_from_slice(&dec);
        out
    }

    /// Restores weights exported by [`TabularAutoencoder::export_weights`].
    ///
    /// # Errors
    /// Returns the underlying [`StateDictError`](silofuse_nn::serialize::StateDictError)
    /// if the blob is malformed or the architectures differ.
    pub fn import_weights(
        &mut self,
        bytes: &[u8],
    ) -> Result<(), silofuse_nn::serialize::StateDictError> {
        use silofuse_nn::serialize::{import_state_dict, StateDictError};
        let len_bytes: [u8; 4] =
            bytes.get(..4).ok_or(StateDictError::Malformed)?.try_into().unwrap();
        let enc_len = u32::from_le_bytes(len_bytes) as usize;
        let enc = bytes.get(4..4 + enc_len).ok_or(StateDictError::Malformed)?;
        let dec = bytes.get(4 + enc_len..).ok_or(StateDictError::Malformed)?;
        import_state_dict(&mut self.encoder, enc)?;
        import_state_dict(&mut self.decoder, dec)
    }

    /// Exports the full training state — weights, buffers, layer RNGs and
    /// both Adam optimizers — framed like [`TabularAutoencoder::export_weights`]
    /// (`u32 encoder-section length | encoder section | decoder section`).
    pub fn export_train_state(&mut self) -> Vec<u8> {
        let enc = silofuse_nn::serialize::export_train_state(&mut self.encoder, &self.enc_opt);
        let dec = silofuse_nn::serialize::export_train_state(&mut self.decoder, &self.dec_opt);
        let mut out = Vec::with_capacity(4 + enc.len() + dec.len());
        out.extend_from_slice(&(enc.len() as u32).to_le_bytes());
        out.extend_from_slice(&enc);
        out.extend_from_slice(&dec);
        out
    }

    /// Restores a training state exported by
    /// [`TabularAutoencoder::export_train_state`].
    ///
    /// # Errors
    /// Returns a [`StateDictError`](silofuse_nn::serialize::StateDictError)
    /// if either section is malformed or the architectures differ.
    pub fn import_train_state(
        &mut self,
        bytes: &[u8],
    ) -> Result<(), silofuse_nn::serialize::StateDictError> {
        use silofuse_nn::serialize::{import_train_state, StateDictError};
        let len_bytes: [u8; 4] =
            bytes.get(..4).ok_or(StateDictError::Malformed)?.try_into().unwrap();
        let enc_len = u32::from_le_bytes(len_bytes) as usize;
        let enc = bytes.get(4..4usize.checked_add(enc_len).ok_or(StateDictError::Malformed)?);
        let enc = enc.ok_or(StateDictError::Malformed)?;
        let dec = bytes.get(4 + enc_len..).ok_or(StateDictError::Malformed)?;
        import_train_state(&mut self.encoder, &mut self.enc_opt, enc)?;
        import_train_state(&mut self.decoder, &mut self.dec_opt, dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silofuse_tabular::profiles;

    fn toy_table(rows: usize) -> Table {
        profiles::loan().generate(rows, 3)
    }

    #[test]
    fn shapes_are_consistent() {
        let t = toy_table(64);
        let mut ae = TabularAutoencoder::new(&t, AutoencoderConfig::default());
        assert_eq!(ae.latent_dim(), t.schema().width());
        let z = ae.encode(&t);
        assert_eq!(z.shape(), (64, t.schema().width()));
        let decoded = ae.decode(&z);
        assert_eq!(decoded.n_rows(), 64);
        assert_eq!(decoded.schema(), t.schema());
    }

    #[test]
    fn training_reduces_reconstruction_loss() {
        let t = toy_table(256);
        let mut ae = TabularAutoencoder::new(
            &t,
            AutoencoderConfig { hidden_dim: 128, lr: 2e-3, ..Default::default() },
        );
        let mut rng = StdRng::seed_from_u64(0);
        let first = ae.fit(&t, 5, 128, &mut rng);
        let last = ae.fit(&t, 300, 128, &mut rng);
        assert!(last < first, "loss did not fall: {first} -> {last}");
    }

    #[test]
    fn trained_autoencoder_reconstructs_categoricals() {
        let t = toy_table(256);
        let mut ae = TabularAutoencoder::new(
            &t,
            AutoencoderConfig { hidden_dim: 128, lr: 2e-3, ..Default::default() },
        );
        let mut rng = StdRng::seed_from_u64(1);
        ae.fit(&t, 600, 128, &mut rng);
        let z = ae.encode(&t);
        let rec = ae.decode(&z);
        // Categorical accuracy across all categorical columns.
        let mut correct = 0usize;
        let mut total = 0usize;
        for (orig, recon) in t.columns().iter().zip(rec.columns()) {
            if let (Some(a), Some(b)) = (orig.as_categorical(), recon.as_categorical()) {
                correct += a.iter().zip(b).filter(|(x, y)| x == y).count();
                total += a.len();
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.75, "categorical reconstruction accuracy {acc}");
    }

    #[test]
    fn trained_autoencoder_reconstructs_numerics() {
        let t = toy_table(256);
        let mut ae = TabularAutoencoder::new(
            &t,
            AutoencoderConfig { hidden_dim: 128, lr: 2e-3, ..Default::default() },
        );
        let mut rng = StdRng::seed_from_u64(2);
        ae.fit(&t, 600, 128, &mut rng);
        let z = ae.encode(&t);
        let rec = ae.decode(&z);
        // R^2-style check on the first numeric column.
        let idx = t.schema().numeric_indices()[0];
        let orig = t.column(idx).as_numeric().unwrap();
        let recon = rec.column(idx).as_numeric().unwrap();
        let mean = orig.iter().sum::<f64>() / orig.len() as f64;
        let ss_tot: f64 = orig.iter().map(|v| (v - mean) * (v - mean)).sum();
        let ss_res: f64 = orig.iter().zip(recon).map(|(a, b)| (a - b) * (a - b)).sum();
        let r2 = 1.0 - ss_res / ss_tot.max(1e-12);
        assert!(r2 > 0.5, "numeric reconstruction R2 {r2}");
    }

    #[test]
    fn e2e_plumbing_produces_finite_grads() {
        let t = toy_table(32);
        let mut ae = TabularAutoencoder::new(&t, AutoencoderConfig::default());
        ae.zero_grad();
        let z = ae.encoder_forward_train(&t);
        let (loss, grad_z) = ae.decoder_loss_backward(&z, &t);
        assert!(loss.is_finite());
        assert_eq!(grad_z.shape(), z.shape());
        assert!(grad_z.all_finite());
        ae.encoder_backward(&grad_z);
        ae.opt_step();
    }

    #[test]
    fn categorical_only_partition_works() {
        // A silo that owns only categorical columns (possible under
        // permuted partitioning) must still train.
        let t = toy_table(64);
        let cats = t.schema().categorical_indices();
        let part = t.project(&cats);
        let mut ae = TabularAutoencoder::new(&part, AutoencoderConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let loss = ae.fit(&part, 10, 32, &mut rng);
        assert!(loss.is_finite());
        let zp = ae.encode(&part);
        let rec = ae.decode(&zp);
        assert_eq!(rec.schema(), part.schema());
    }

    #[test]
    fn weight_export_import_round_trips_latents() {
        let t = toy_table(64);
        let cfg = AutoencoderConfig::default();
        let mut trained = TabularAutoencoder::new(&t, cfg);
        let mut rng = StdRng::seed_from_u64(8);
        trained.fit(&t, 50, 32, &mut rng);
        let z_before = trained.encode(&t);
        let blob = trained.export_weights();

        let mut fresh = TabularAutoencoder::new(&t, AutoencoderConfig { seed: 999, ..cfg });
        assert_ne!(fresh.encode(&t), z_before);
        fresh.import_weights(&blob).unwrap();
        assert_eq!(fresh.encode(&t), z_before);
    }

    #[test]
    fn train_state_round_trips_into_fresh_model() {
        let t = toy_table(96);
        let cfg = AutoencoderConfig { hidden_dim: 64, ..Default::default() };
        let mut trained = TabularAutoencoder::new(&t, cfg);
        let mut rng = StdRng::seed_from_u64(5);
        trained.fit(&t, 30, 32, &mut rng);
        let blob = trained.export_train_state();

        let mut fresh = TabularAutoencoder::new(&t, AutoencoderConfig { seed: 777, ..cfg });
        fresh.import_train_state(&blob).unwrap();
        // Both copies must continue training bit-identically: same Adam
        // moments, same step counters, same weights.
        let mut rng_a = StdRng::seed_from_u64(6);
        let mut rng_b = StdRng::seed_from_u64(6);
        trained.fit(&t, 10, 32, &mut rng_a);
        fresh.fit(&t, 10, 32, &mut rng_b);
        assert_eq!(trained.export_weights(), fresh.export_weights());
        // Truncated/garbage blobs must be rejected, not panic.
        assert!(fresh.import_train_state(&blob[..blob.len() / 2]).is_err());
        assert!(fresh.import_train_state(&[1, 2, 3]).is_err());
    }

    #[test]
    fn fit_crash_and_resume_is_bit_identical() {
        use silofuse_checkpoint::CrashPoint;
        let t = toy_table(128);
        let cfg = AutoencoderConfig { hidden_dim: 64, ..Default::default() };

        // Uninterrupted baseline.
        let mut clean = TabularAutoencoder::new(&t, cfg);
        let mut rng_clean = StdRng::seed_from_u64(11);
        clean.fit(&t, 40, 32, &mut rng_clean);
        let z_clean = clean.encode(&t);

        // Crash at step 23 (checkpoint cadence 7 → last save at step 21).
        let dir = std::env::temp_dir().join(format!("silofuse-ae-crash-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let ckpt =
            Checkpointer::new(&dir, 7).with_crash(Some(CrashPoint::parse("ae-train:23").unwrap()));
        let mut crashed = TabularAutoencoder::new(&t, cfg);
        let mut rng = StdRng::seed_from_u64(11);
        let err = crashed.fit_resumable(&t, 40, 32, &mut rng, &ckpt, "ae", "ae-train");
        assert!(matches!(err, Err(CheckpointError::Crashed { .. })));
        drop(crashed); // the "process" died

        // Restart: fresh model, wrong RNG seed; everything comes from disk.
        let resume = Checkpointer::new(&dir, 7).with_resume(true);
        let mut revived = TabularAutoencoder::new(&t, cfg);
        let mut rng2 = StdRng::seed_from_u64(999);
        revived.fit_resumable(&t, 40, 32, &mut rng2, &resume, "ae", "ae-train").unwrap();
        assert_eq!(revived.encode(&t), z_clean);
        assert_eq!(rng2.state(), rng_clean.state());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn weight_import_rejects_wrong_architecture() {
        let t = toy_table(32);
        let mut a = TabularAutoencoder::new(&t, AutoencoderConfig::default());
        let blob = a.export_weights();
        let mut b =
            TabularAutoencoder::new(&t, AutoencoderConfig { hidden_dim: 64, ..Default::default() });
        assert!(b.import_weights(&blob).is_err());
    }

    #[test]
    fn numeric_only_partition_works() {
        let t = toy_table(64);
        let nums = t.schema().numeric_indices();
        let part = t.project(&nums);
        let mut ae = TabularAutoencoder::new(&part, AutoencoderConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let loss = ae.fit(&part, 10, 32, &mut rng);
        assert!(loss.is_finite());
    }

    #[test]
    fn sparse_auto_path_is_bit_identical_to_dense() {
        // Churn's 2 932-way column trips the auto threshold; training and
        // encoding must match the dense oracle bit for bit.
        let t = profiles::churn().generate(128, 13);
        let cfg = AutoencoderConfig { hidden_dim: 32, ..Default::default() };
        let mut sparse = TabularAutoencoder::new(&t, cfg);
        let mut dense =
            TabularAutoencoder::new(&t, AutoencoderConfig { encoding: SparsePolicy::Dense, ..cfg });
        assert!(sparse.uses_sparse() && !dense.uses_sparse());
        let mut rng_a = StdRng::seed_from_u64(4);
        let mut rng_b = StdRng::seed_from_u64(4);
        sparse.fit(&t, 8, 32, &mut rng_a);
        dense.fit(&t, 8, 32, &mut rng_b);
        assert_eq!(sparse.export_weights(), dense.export_weights());
        assert_eq!(sparse.encode(&t), dense.encode(&t));
        assert!(sparse.sparse_batch_bytes().unwrap() > 0);
        // Loan's modest expansion stays dense under Auto.
        assert!(!TabularAutoencoder::new(&toy_table(32), cfg).uses_sparse());
    }

    #[test]
    fn checkpoints_interchange_across_representations() {
        // A dense-trained state must resume on the sparse path (and keep
        // training bit-identically): EmbeddingGather serialises exactly
        // like Linear.
        let t = profiles::churn().generate(96, 5);
        let cfg = AutoencoderConfig { hidden_dim: 32, ..Default::default() };
        let mut dense =
            TabularAutoencoder::new(&t, AutoencoderConfig { encoding: SparsePolicy::Dense, ..cfg });
        let mut rng = StdRng::seed_from_u64(21);
        dense.fit(&t, 6, 32, &mut rng);
        let blob = dense.export_train_state();

        let mut sparse = TabularAutoencoder::new(
            &t,
            AutoencoderConfig { seed: 99, encoding: SparsePolicy::Sparse, ..cfg },
        );
        sparse.import_train_state(&blob).unwrap();
        let mut rng_a = StdRng::seed_from_u64(22);
        let mut rng_b = StdRng::seed_from_u64(22);
        dense.fit(&t, 6, 32, &mut rng_a);
        sparse.fit(&t, 6, 32, &mut rng_b);
        assert_eq!(dense.export_weights(), sparse.export_weights());
    }
}
