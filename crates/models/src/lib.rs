//! # silofuse-models
//!
//! The centralized tabular synthesizers of the SiloFuse evaluation:
//!
//! * [`autoencoder::TabularAutoencoder`] — encoder/decoder with Gaussian and
//!   multinomial distribution heads (paper §III-B, Eq. 4);
//! * [`tabddpm::TabDdpm`] — the TabDDPM baseline (Gaussian + multinomial
//!   diffusion on one-hot data, Eq. 3);
//! * [`latentdiff::LatentDiff`] — centralized latent diffusion with stacked
//!   training (SiloFuse's single-silo upper bound);
//! * [`e2e::E2eCentralized`] — the jointly-trained end-to-end baseline (Fig. 8);
//! * [`gan::TabularGan`] — GAN(linear)/GAN(conv) baselines (§V-A);
//!
//! all unified behind [`synthesizer::Synthesizer`].

#![warn(missing_docs)]

pub mod autoencoder;
pub mod e2e;
pub mod gan;
pub mod latentdiff;
pub(crate) mod sparse;
pub mod synthesizer;
pub mod tabddpm;

pub use autoencoder::{AutoencoderConfig, TabularAutoencoder};
pub use e2e::E2eCentralized;
pub use gan::{GanArchitecture, GanConfig, TabularGan};
pub use latentdiff::{LatentDiff, LatentDiffConfig, LatentScaler};
pub use synthesizer::Synthesizer;
pub use tabddpm::{TabDdpm, TabDdpmConfig};
