//! GAN baselines: GAN(linear) ≈ CTGAN and GAN(conv) ≈ CTAB-GAN (§V-A).
//!
//! Both train on one-hot encodings with min-max-scaled numerics — the
//! mainstream encoding whose sparsity/width blow-up the paper criticises —
//! using four generator layers with LeakyReLU and LayerNorm and a transposed
//! discriminator, Adam with β₁ = 0.5.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silofuse_checkpoint::{CheckpointError, Checkpointer};
use silofuse_nn::init::{randn, Init};
use silofuse_nn::layers::{
    Activation, ActivationKind, Conv1d, EmbeddingGather, Layer, LayerNorm, Linear, Mode, Sequential,
};
use silofuse_nn::loss::bce_with_logits;
use silofuse_nn::optim::{Adam, Optimizer};
use silofuse_nn::sparse::SparseSpec;
use silofuse_nn::Tensor;
use silofuse_observe as observe;
use silofuse_tabular::encode::{ScalingKind, TableEncoder};
use silofuse_tabular::table::Table;
use silofuse_tabular::{SparseBatch, SparsePolicy};

/// Generator/discriminator backbone flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GanArchitecture {
    /// Linear stack (CTGAN-style).
    Linear,
    /// 1-D convolutional stack (CTAB-GAN-style).
    Conv,
}

/// GAN hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct GanConfig {
    /// Backbone flavour.
    pub architecture: GanArchitecture,
    /// Noise input width.
    pub noise_dim: usize,
    /// Hidden width (linear) / base channel count (conv).
    pub hidden_dim: usize,
    /// Adam learning rate (β₁ = 0.5 as is standard for GANs).
    pub lr: f32,
    /// Initialisation seed.
    pub seed: u64,
    /// Batch representation policy for *real* discriminator batches.
    /// Only the linear architecture has a sparse input layer; the conv
    /// discriminator always densifies. Both paths train bit-identically.
    pub encoding: SparsePolicy,
}

impl Default for GanConfig {
    fn default() -> Self {
        Self {
            architecture: GanArchitecture::Linear,
            noise_dim: 64,
            hidden_dim: 256,
            lr: 2e-4,
            seed: 0,
            encoding: SparsePolicy::Auto,
        }
    }
}

/// Per-step GAN losses.
#[derive(Debug, Clone, Copy)]
pub struct GanLosses {
    /// Discriminator loss (real + fake halves).
    pub d_loss: f32,
    /// Generator (non-saturating) loss.
    pub g_loss: f32,
}

/// A GAN synthesizer bound to one table schema.
pub struct TabularGan {
    generator: Sequential,
    discriminator: Sequential,
    g_opt: Adam,
    d_opt: Adam,
    table_encoder: TableEncoder,
    /// Reusable sparse batch for real discriminator inputs when the sparse
    /// path is active (linear architecture only); fake batches are
    /// generator output and always dense.
    sparse: Option<SparseBatch>,
    noise_dim: usize,
    lr: f32,
}

impl std::fmt::Debug for TabularGan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TabularGan(width={})", self.table_encoder.encoded_width())
    }
}

impl TabularGan {
    /// Builds an untrained GAN for `table`'s schema, fitting scalers on it.
    pub fn new(table: &Table, config: GanConfig) -> Self {
        let table_encoder = TableEncoder::fit(table, ScalingKind::MinMax);
        let width = table_encoder.encoded_width();
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Only the linear discriminator can take a sparse first layer; the
        // conv stack convolves over the full one-hot signal.
        let use_sparse = config.architecture == GanArchitecture::Linear
            && config.encoding.selects_sparse(table.schema());
        let spec = use_sparse.then(|| crate::sparse::sparse_spec(table.schema()));
        let (generator, discriminator) = match config.architecture {
            GanArchitecture::Linear => (
                linear_generator(config.noise_dim, config.hidden_dim, width, &mut rng),
                linear_discriminator(width, config.hidden_dim, spec, &mut rng),
            ),
            GanArchitecture::Conv => (
                conv_generator(config.noise_dim, width, &mut rng),
                conv_discriminator(width, &mut rng),
            ),
        };
        let sparse = use_sparse.then(|| table_encoder.sparse_batch());
        Self {
            generator,
            discriminator,
            g_opt: Adam::with_betas(config.lr, 0.5, 0.999),
            d_opt: Adam::with_betas(config.lr, 0.5, 0.999),
            table_encoder,
            sparse,
            noise_dim: config.noise_dim,
            lr: config.lr,
        }
    }

    /// True when real batches are encoded sparsely (index+value buffers).
    pub fn uses_sparse(&self) -> bool {
        self.sparse.is_some()
    }

    /// Bytes held by the most recently encoded sparse batch, or `None` on
    /// the dense path. Scales with nonzeros, not with the one-hot width.
    pub fn sparse_batch_bytes(&self) -> Option<usize> {
        self.sparse.as_ref().map(SparseBatch::batch_bytes)
    }

    /// Discriminator forward over a *real* batch: sparse when the sparse
    /// path is active (the EmbeddingGather first layer gathers weight rows
    /// instead of multiplying one-hot zeros), dense otherwise. Encoding
    /// consumes no RNG draws, so both paths leave the training random
    /// stream identical.
    fn discriminate_real(&mut self, real: &Table) -> Tensor {
        let Self { table_encoder, sparse, discriminator, .. } = self;
        match sparse {
            Some(batch) => {
                table_encoder
                    .encode_sparse_into(real, batch)
                    .expect("batch codes already validated against the fitted schema");
                discriminator.forward_sparse(crate::sparse::batch_ref(batch), Mode::Train)
            }
            None => {
                let x = Tensor::from_vec(
                    real.n_rows(),
                    table_encoder.encoded_width(),
                    table_encoder.encode(real),
                );
                discriminator.forward(&x, Mode::Train)
            }
        }
    }

    /// One adversarial step (one D update, one G update) on a real batch.
    pub fn train_step(&mut self, real: &Table, rng: &mut StdRng) -> GanLosses {
        let n = real.n_rows();
        let noise = randn(n, self.noise_dim, rng);
        let x_fake = self.generator.forward(&noise, Mode::Train);

        // --- Discriminator update: maximise log D(x) + log(1 - D(G(z))).
        // Real (possibly sparse) and fake (dense) batches go through the
        // same first layer; each backward consumes the matching cache.
        self.discriminator.zero_grad();
        let logits_real = self.discriminate_real(real);
        let ones = Tensor::full(n, 1, 1.0);
        let (l_real, g_real) = bce_with_logits(&logits_real, &ones);
        let _ = self.discriminator.backward(&g_real);
        let logits_fake = self.discriminator.forward(&x_fake, Mode::Train);
        let zeros = Tensor::zeros(n, 1);
        let (l_fake, g_fake) = bce_with_logits(&logits_fake, &zeros);
        let _ = self.discriminator.backward(&g_fake);
        self.d_opt.step(&mut self.discriminator);

        // --- Generator update: non-saturating, maximise log D(G(z)).
        self.generator.zero_grad();
        self.discriminator.zero_grad();
        let logits_fake2 = self.discriminator.forward(&x_fake, Mode::Train);
        let (g_loss, g_grad) = bce_with_logits(&logits_fake2, &ones);
        let grad_fake = self.discriminator.backward(&g_grad);
        let _ = self.generator.backward(&grad_fake);
        self.g_opt.step(&mut self.generator);

        GanLosses { d_loss: l_real + l_fake, g_loss }
    }

    /// Trains for `steps` minibatch steps.
    pub fn fit(&mut self, table: &Table, steps: usize, batch_size: usize, rng: &mut StdRng) {
        self.fit_resumable(
            table,
            steps,
            batch_size,
            rng,
            &Checkpointer::disabled(),
            "",
            "gan-train",
        )
        .expect("checkpointing disabled: no I/O or injected crash can fail");
    }

    /// Step-resumable training: periodically checkpoints generator,
    /// discriminator, both Adam optimizers and the caller RNG under `name`,
    /// resuming from the latest checkpoint when `ckpt` has resume enabled.
    ///
    /// With checkpointing disabled this is bit-identical to
    /// [`TabularGan::fit`]: checkpoints never consume RNG draws.
    ///
    /// # Errors
    /// Propagates checkpoint I/O or decode failures, a corrupt/mismatched
    /// saved state, or an injected [`CheckpointError::Crashed`].
    #[allow(clippy::too_many_arguments)]
    pub fn fit_resumable(
        &mut self,
        table: &Table,
        steps: usize,
        batch_size: usize,
        rng: &mut StdRng,
        ckpt: &Checkpointer,
        name: &str,
        phase: &str,
    ) -> Result<(), CheckpointError> {
        let _span = observe::span("gan-train");
        // Training math must never route through a reduced-precision
        // backend: pin dispatch to f32 for the duration of this fit.
        let _f32 = silofuse_nn::backend::force_f32();
        silofuse_nn::backend::record_telemetry();
        let mut start = 0usize;
        if let Some(saved) = ckpt.load(name, phase)? {
            if saved.payload.len() < 8 {
                return Err(CheckpointError::Truncated);
            }
            let state = u64::from_le_bytes(saved.payload[..8].try_into().unwrap());
            self.import_train_state(&saved.payload[8..]).map_err(CheckpointError::state)?;
            *rng = StdRng::from_state(state);
            start = (saved.step as usize).min(steps);
        } else if ckpt.is_enabled() {
            // Phase-entry checkpoint: a crash before the first periodic save
            // must not resume with an already-advanced RNG.
            let payload = self.snapshot_with_rng(rng);
            ckpt.save(name, phase, 0, &payload)?;
        }
        ckpt.maybe_crash(phase, start as u64)?;
        let stride = observe::epoch_stride(steps);
        let n = table.n_rows();
        for step in start..steps {
            let idx: Vec<usize> = (0..batch_size.min(n)).map(|_| rng.gen_range(0..n)).collect();
            let batch = table.select_rows(&idx);
            let losses = self.train_step(&batch, rng);
            if step % stride == 0 {
                observe::train_epoch(
                    "gan",
                    step as u64,
                    f64::from(losses.g_loss),
                    f64::from(self.lr),
                    batch.n_rows() as u64,
                );
            }
            let done = (step + 1) as u64;
            if ckpt.is_enabled() && ckpt.due(done, steps as u64) {
                let payload = self.snapshot_with_rng(rng);
                ckpt.save(name, phase, done, &payload)?;
            }
            ckpt.maybe_crash(phase, done)?;
        }
        Ok(())
    }

    /// Exports the full training state — generator and discriminator weights
    /// plus both Adam optimizers — framed as
    /// `u32 generator-section length | generator section | discriminator section`.
    pub fn export_train_state(&mut self) -> Vec<u8> {
        let gen = silofuse_nn::serialize::export_train_state(&mut self.generator, &self.g_opt);
        let disc = silofuse_nn::serialize::export_train_state(&mut self.discriminator, &self.d_opt);
        let mut out = Vec::with_capacity(4 + gen.len() + disc.len());
        out.extend_from_slice(&(gen.len() as u32).to_le_bytes());
        out.extend_from_slice(&gen);
        out.extend_from_slice(&disc);
        out
    }

    /// Restores a training state exported by [`TabularGan::export_train_state`].
    ///
    /// # Errors
    /// Returns a [`StateDictError`](silofuse_nn::serialize::StateDictError)
    /// if either section is malformed or the architectures differ.
    pub fn import_train_state(
        &mut self,
        bytes: &[u8],
    ) -> Result<(), silofuse_nn::serialize::StateDictError> {
        use silofuse_nn::serialize::{import_train_state, StateDictError};
        let len_bytes: [u8; 4] =
            bytes.get(..4).ok_or(StateDictError::Malformed)?.try_into().unwrap();
        let gen_len = u32::from_le_bytes(len_bytes) as usize;
        let gen = bytes
            .get(4..4usize.checked_add(gen_len).ok_or(StateDictError::Malformed)?)
            .ok_or(StateDictError::Malformed)?;
        let disc = bytes.get(4 + gen_len..).ok_or(StateDictError::Malformed)?;
        import_train_state(&mut self.generator, &mut self.g_opt, gen)?;
        import_train_state(&mut self.discriminator, &mut self.d_opt, disc)
    }

    /// Checkpoint payload: caller RNG state (8 LE bytes) then the train state.
    fn snapshot_with_rng(&mut self, rng: &StdRng) -> Vec<u8> {
        let mut payload = rng.state().to_le_bytes().to_vec();
        payload.extend_from_slice(&self.export_train_state());
        payload
    }

    /// Generates `n` synthetic rows.
    pub fn sample(&mut self, n: usize, rng: &mut StdRng) -> Table {
        let noise = randn(n, self.noise_dim, rng);
        let fake = self.generator.forward(&noise, Mode::Infer);
        self.table_encoder.decode(fake.as_slice()).expect("generator output width matches encoder")
    }
}

fn linear_generator(noise: usize, hidden: usize, out: usize, rng: &mut StdRng) -> Sequential {
    let mut seq = Sequential::new();
    let dims = [noise, hidden, hidden, hidden, out];
    for i in 0..4 {
        seq.add(Box::new(Linear::new(dims[i], dims[i + 1], Init::KaimingNormal, rng)));
        if i < 3 {
            seq.add(Box::new(Activation::new(ActivationKind::LeakyRelu)));
            seq.add(Box::new(LayerNorm::new(dims[i + 1])));
        }
    }
    seq
}

/// Linear discriminator; with a `sparse` spec the first layer becomes an
/// [`EmbeddingGather`] (same parameters and initialiser draws as the
/// `Linear` it replaces, so state dicts interchange).
fn linear_discriminator(
    input: usize,
    hidden: usize,
    sparse: Option<SparseSpec>,
    rng: &mut StdRng,
) -> Sequential {
    let mut seq = Sequential::new();
    let dims = [input, hidden, hidden, hidden, 1];
    match sparse {
        Some(spec) => {
            debug_assert_eq!(spec.in_width(), input, "sparse spec width must match encoder");
            seq.add(Box::new(EmbeddingGather::new(spec, dims[1], Init::KaimingNormal, rng)));
        }
        None => seq.add(Box::new(Linear::new(dims[0], dims[1], Init::KaimingNormal, rng))),
    }
    seq.add(Box::new(Activation::new(ActivationKind::LeakyRelu)));
    seq.add(Box::new(LayerNorm::new(dims[1])));
    for i in 1..4 {
        seq.add(Box::new(Linear::new(dims[i], dims[i + 1], Init::KaimingNormal, rng)));
        if i < 3 {
            seq.add(Box::new(Activation::new(ActivationKind::LeakyRelu)));
            seq.add(Box::new(LayerNorm::new(dims[i + 1])));
        }
    }
    seq
}

/// Conv generator: linear lift to a multi-channel signal, then conv layers
/// refining it down to a single channel of the output width.
fn conv_generator(noise: usize, out_width: usize, rng: &mut StdRng) -> Sequential {
    let channels = 4usize;
    Sequential::new()
        .push(Linear::new(noise, channels * out_width, Init::KaimingNormal, rng))
        .push(Activation::new(ActivationKind::LeakyRelu))
        .push(Conv1d::new(channels, channels, 3, 1, 1, out_width, rng))
        .push(Activation::new(ActivationKind::LeakyRelu))
        .push(Conv1d::new(channels, 1, 3, 1, 1, out_width, rng))
}

/// Conv discriminator: strided convolutions then a linear head (the
/// "transposed" architecture of the generator).
fn conv_discriminator(input_width: usize, rng: &mut StdRng) -> Sequential {
    let c1 = Conv1d::new(1, 4, 5, 2, 2, input_width, rng);
    let l1 = c1.output_len();
    let c2 = Conv1d::new(4, 8, 5, 2, 2, l1, rng);
    let flat = c2.output_width();
    Sequential::new()
        .push(c1)
        .push(Activation::new(ActivationKind::LeakyRelu))
        .push(c2)
        .push(Activation::new(ActivationKind::LeakyRelu))
        .push(Linear::new(flat, 1, Init::KaimingNormal, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use silofuse_tabular::profiles;

    #[test]
    fn linear_gan_shapes_and_decoding() {
        let t = profiles::loan().generate(64, 0);
        let mut gan = TabularGan::new(&t, GanConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let losses = gan.train_step(&t, &mut rng);
        assert!(losses.d_loss.is_finite() && losses.g_loss.is_finite());
        let sample = gan.sample(16, &mut rng);
        assert_eq!(sample.n_rows(), 16);
        assert_eq!(sample.schema(), t.schema());
    }

    #[test]
    fn conv_gan_shapes_and_decoding() {
        let t = profiles::loan().generate(64, 0);
        let cfg = GanConfig { architecture: GanArchitecture::Conv, ..Default::default() };
        let mut gan = TabularGan::new(&t, cfg);
        let mut rng = StdRng::seed_from_u64(0);
        let losses = gan.train_step(&t, &mut rng);
        assert!(losses.d_loss.is_finite() && losses.g_loss.is_finite());
        let sample = gan.sample(8, &mut rng);
        assert_eq!(sample.n_rows(), 8);
    }

    #[test]
    fn adversarial_training_moves_generator_output_toward_data() {
        // 1-D sanity: data mean strongly positive; after training, generated
        // numerics should drift toward the data's range.
        let t = profiles::diabetes().generate(256, 1);
        let mut gan =
            TabularGan::new(&t, GanConfig { hidden_dim: 128, lr: 5e-4, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(2);
        gan.fit(&t, 200, 128, &mut rng);
        let sample = gan.sample(256, &mut rng);
        // Every generated numeric must be finite and within the min-max
        // decode range (the decoder clamps), and the discriminator should
        // not trivially separate them (loss sanity).
        for (col, meta) in sample.columns().iter().zip(sample.schema().columns()) {
            if let Some(v) = col.as_numeric() {
                assert!(v.iter().all(|x| x.is_finite()), "{}", meta.name);
            }
        }
    }

    #[test]
    fn gan_fit_crash_and_resume_is_bit_identical() {
        use silofuse_checkpoint::CrashPoint;
        let t = profiles::loan().generate(128, 9);
        let cfg = GanConfig { hidden_dim: 64, ..Default::default() };

        // Uninterrupted baseline.
        let mut clean = TabularGan::new(&t, cfg);
        let mut rng_clean = StdRng::seed_from_u64(17);
        clean.fit(&t, 30, 32, &mut rng_clean);
        let state_after_fit = rng_clean.state();
        let sample_clean = clean.sample(16, &mut rng_clean);

        // Crash mid-run, then resume a fresh differently-seeded model.
        let dir = std::env::temp_dir().join(format!("silofuse-gan-crash-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let ckpt =
            Checkpointer::new(&dir, 4).with_crash(Some(CrashPoint::parse("gan-train:14").unwrap()));
        let mut crashed = TabularGan::new(&t, cfg);
        let mut rng = StdRng::seed_from_u64(17);
        let err = crashed.fit_resumable(&t, 30, 32, &mut rng, &ckpt, "gan", "gan-train");
        assert!(matches!(err, Err(CheckpointError::Crashed { .. })));
        drop(crashed);

        let resume = Checkpointer::new(&dir, 4).with_resume(true);
        let mut revived = TabularGan::new(&t, GanConfig { seed: 555, ..cfg });
        let mut rng2 = StdRng::seed_from_u64(999);
        revived.fit_resumable(&t, 30, 32, &mut rng2, &resume, "gan", "gan-train").unwrap();
        assert_eq!(rng2.state(), state_after_fit);
        let sample_resumed = revived.sample(16, &mut rng2);
        assert_eq!(sample_resumed, sample_clean, "resumed GAN output differs from clean run");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gan_produces_varied_categories() {
        let t = profiles::loan().generate(256, 7);
        let mut gan = TabularGan::new(&t, GanConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        gan.fit(&t, 100, 128, &mut rng);
        let sample = gan.sample(128, &mut rng);
        // At least one categorical column should emit more than one class
        // (untrained GANs may collapse, trained ones on Loan shouldn't be
        // fully constant everywhere).
        let varied = sample
            .columns()
            .iter()
            .filter_map(|c| c.as_categorical())
            .any(|codes| codes.iter().any(|&v| v != codes[0]));
        assert!(varied, "all categorical outputs collapsed to constants");
    }

    #[test]
    fn sparse_discriminator_is_bit_identical_to_dense() {
        // Churn trips the auto threshold; the sparse real path must leave
        // training (weights, optimizer state, samples) bit-identical.
        let t = profiles::churn().generate(96, 4);
        let cfg = GanConfig { hidden_dim: 32, noise_dim: 16, ..Default::default() };
        let mut sparse = TabularGan::new(&t, cfg);
        let mut dense = TabularGan::new(&t, GanConfig { encoding: SparsePolicy::Dense, ..cfg });
        assert!(sparse.uses_sparse() && !dense.uses_sparse());
        let mut rng_a = StdRng::seed_from_u64(6);
        let mut rng_b = StdRng::seed_from_u64(6);
        sparse.fit(&t, 5, 32, &mut rng_a);
        dense.fit(&t, 5, 32, &mut rng_b);
        assert_eq!(sparse.export_train_state(), dense.export_train_state());
        assert_eq!(sparse.sample(8, &mut rng_a), dense.sample(8, &mut rng_b));
        // The conv stack has no sparse input layer, even when forced.
        let conv = TabularGan::new(
            &t,
            GanConfig {
                architecture: GanArchitecture::Conv,
                encoding: SparsePolicy::Sparse,
                ..cfg
            },
        );
        assert!(!conv.uses_sparse());
    }
}
