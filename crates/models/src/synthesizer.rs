//! The uniform [`Synthesizer`] interface over every model in the benchmark,
//! so the experiment harness can swap models freely (Tables III, IV, VI).

use crate::e2e::E2eCentralized;
use crate::gan::{GanConfig, TabularGan};
use crate::latentdiff::{LatentDiff, LatentDiffConfig};
use crate::tabddpm::{TabDdpm, TabDdpmConfig};
use rand::rngs::StdRng;
use silofuse_checkpoint::{CheckpointError, Checkpointer};
use silofuse_tabular::table::Table;

/// A tabular data synthesizer: fit on real data, then sample synthetic rows.
pub trait Synthesizer {
    /// Model name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Trains the model on `table`.
    fn fit(&mut self, table: &Table, rng: &mut StdRng);

    /// Generates `n` synthetic rows with the same schema as the training
    /// table.
    ///
    /// # Panics
    /// Implementations panic if called before `fit`.
    fn synthesize(&mut self, n: usize, rng: &mut StdRng) -> Table;

    /// Installs a checkpointer so `try_fit` periodically persists training
    /// state and can resume after a crash. Models without checkpoint
    /// support ignore it (the default).
    fn set_checkpointer(&mut self, _ckpt: Checkpointer) {}

    /// Fallible variant of [`Synthesizer::fit`] surfacing checkpoint
    /// errors. The default delegates to `fit` (infallible for models
    /// without checkpoint support).
    ///
    /// # Errors
    /// Checkpoint-aware models propagate I/O failures, corrupt saved state
    /// and injected crashes as [`CheckpointError`].
    fn try_fit(&mut self, table: &Table, rng: &mut StdRng) -> Result<(), CheckpointError> {
        self.fit(table, rng);
        Ok(())
    }
}

/// GAN baseline behind the [`Synthesizer`] interface.
pub struct GanSynthesizer {
    /// GAN architecture/optimizer configuration.
    pub config: GanConfig,
    /// Adversarial training steps.
    pub steps: usize,
    /// Minibatch size.
    pub batch_size: usize,
    name: &'static str,
    model: Option<TabularGan>,
    ckpt: Checkpointer,
}

impl GanSynthesizer {
    /// Creates the linear-backbone GAN (CTGAN-flavoured).
    pub fn linear(config: GanConfig, steps: usize, batch_size: usize) -> Self {
        Self {
            config,
            steps,
            batch_size,
            name: "GAN(linear)",
            model: None,
            ckpt: Checkpointer::disabled(),
        }
    }

    /// Creates the convolutional-backbone GAN (CTAB-GAN-flavoured).
    pub fn conv(config: GanConfig, steps: usize, batch_size: usize) -> Self {
        Self {
            config,
            steps,
            batch_size,
            name: "GAN(conv)",
            model: None,
            ckpt: Checkpointer::disabled(),
        }
    }
}

impl Synthesizer for GanSynthesizer {
    fn name(&self) -> &'static str {
        self.name
    }

    fn fit(&mut self, table: &Table, rng: &mut StdRng) {
        self.try_fit(table, rng).expect("checkpoint failure during GanSynthesizer::fit");
    }

    fn synthesize(&mut self, n: usize, rng: &mut StdRng) -> Table {
        self.model.as_mut().expect("GanSynthesizer::fit must be called first").sample(n, rng)
    }

    fn set_checkpointer(&mut self, ckpt: Checkpointer) {
        self.ckpt = ckpt;
    }

    fn try_fit(&mut self, table: &Table, rng: &mut StdRng) -> Result<(), CheckpointError> {
        let mut model = TabularGan::new(table, self.config);
        model.fit_resumable(
            table,
            self.steps,
            self.batch_size,
            rng,
            &self.ckpt,
            "gan",
            "gan-train",
        )?;
        self.model = Some(model);
        Ok(())
    }
}

/// TabDDPM baseline behind the [`Synthesizer`] interface.
pub struct TabDdpmSynthesizer {
    /// Model configuration.
    pub config: TabDdpmConfig,
    /// Training steps.
    pub steps: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Reverse-process steps at synthesis.
    pub inference_steps: usize,
    model: Option<TabDdpm>,
    ckpt: Checkpointer,
}

impl TabDdpmSynthesizer {
    /// Creates an unfitted TabDDPM synthesizer.
    pub fn new(
        config: TabDdpmConfig,
        steps: usize,
        batch_size: usize,
        inference_steps: usize,
    ) -> Self {
        Self {
            config,
            steps,
            batch_size,
            inference_steps,
            model: None,
            ckpt: Checkpointer::disabled(),
        }
    }
}

impl Synthesizer for TabDdpmSynthesizer {
    fn name(&self) -> &'static str {
        "TabDDPM"
    }

    fn fit(&mut self, table: &Table, rng: &mut StdRng) {
        self.try_fit(table, rng).expect("checkpoint failure during TabDdpmSynthesizer::fit");
    }

    fn synthesize(&mut self, n: usize, rng: &mut StdRng) -> Table {
        self.model.as_mut().expect("TabDdpmSynthesizer::fit must be called first").sample(
            n,
            self.inference_steps,
            rng,
        )
    }

    fn set_checkpointer(&mut self, ckpt: Checkpointer) {
        self.ckpt = ckpt;
    }

    fn try_fit(&mut self, table: &Table, rng: &mut StdRng) -> Result<(), CheckpointError> {
        let mut model = TabDdpm::new(table, self.config);
        model.fit_resumable(
            table,
            self.steps,
            self.batch_size,
            rng,
            &self.ckpt,
            "tabddpm",
            "tabddpm-train",
        )?;
        self.model = Some(model);
        Ok(())
    }
}

impl Synthesizer for LatentDiff {
    fn name(&self) -> &'static str {
        "LatentDiff"
    }

    fn fit(&mut self, table: &Table, rng: &mut StdRng) {
        LatentDiff::fit(self, table, rng);
    }

    fn synthesize(&mut self, n: usize, rng: &mut StdRng) -> Table {
        LatentDiff::synthesize(self, n, rng)
    }

    fn set_checkpointer(&mut self, ckpt: Checkpointer) {
        LatentDiff::set_checkpointer(self, ckpt);
    }

    fn try_fit(&mut self, table: &Table, rng: &mut StdRng) -> Result<(), CheckpointError> {
        LatentDiff::try_fit(self, table, rng)
    }
}

impl Synthesizer for E2eCentralized {
    fn name(&self) -> &'static str {
        "E2E"
    }

    fn fit(&mut self, table: &Table, rng: &mut StdRng) {
        E2eCentralized::fit(self, table, rng);
    }

    fn synthesize(&mut self, n: usize, rng: &mut StdRng) -> Table {
        E2eCentralized::synthesize(self, n, rng)
    }
}

/// Convenience constructor for a LatentDiff synthesizer boxed as a trait
/// object.
pub fn boxed_latent_diff(config: LatentDiffConfig) -> Box<dyn Synthesizer> {
    Box::new(LatentDiff::new(config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use silofuse_tabular::profiles;

    #[test]
    fn every_wrapper_round_trips_through_the_trait() {
        let t = profiles::loan().generate(128, 0);
        let quick_ld = LatentDiffConfig {
            ae_steps: 30,
            diffusion_steps: 30,
            timesteps: 20,
            inference_steps: 5,
            batch_size: 64,
            ..Default::default()
        };
        let mut models: Vec<Box<dyn Synthesizer>> = vec![
            Box::new(GanSynthesizer::linear(GanConfig::default(), 20, 64)),
            Box::new(GanSynthesizer::conv(
                GanConfig { architecture: crate::gan::GanArchitecture::Conv, ..Default::default() },
                10,
                64,
            )),
            Box::new(TabDdpmSynthesizer::new(
                TabDdpmConfig { timesteps: 20, ..Default::default() },
                20,
                64,
                5,
            )),
            Box::new(LatentDiff::new(quick_ld)),
            Box::new(E2eCentralized::new(quick_ld)),
        ];
        let mut rng = StdRng::seed_from_u64(0);
        for model in &mut models {
            model.fit(&t, &mut rng);
            let s = model.synthesize(16, &mut rng);
            assert_eq!(s.n_rows(), 16, "{}", model.name());
            assert_eq!(s.schema(), t.schema(), "{}", model.name());
        }
        let names: Vec<_> = models.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["GAN(linear)", "GAN(conv)", "TabDDPM", "LatentDiff", "E2E"]);
    }
}
