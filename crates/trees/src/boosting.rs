//! Gradient boosting: regression, binary classification, and one-vs-rest
//! multiclass.

use crate::binning::{BinnedFeatures, Features};
use crate::tree::{Tree, TreeParams};

/// Boosting hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct BoostParams {
    /// Number of boosting rounds (trees).
    pub n_trees: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Per-tree growing parameters.
    pub tree: TreeParams,
    /// Maximum histogram bins per feature.
    pub max_bins: usize,
}

impl Default for BoostParams {
    fn default() -> Self {
        Self { n_trees: 60, learning_rate: 0.15, tree: TreeParams::default(), max_bins: 32 }
    }
}

/// Validates that `features` is a non-empty rectangular column-major matrix
/// aligned with `n_rows` targets.
fn validate(features: &Features, n_rows: usize) {
    assert!(!features.is_empty(), "need at least one feature");
    assert!(features.iter().all(|f| f.len() == n_rows), "feature columns must match target length");
}

fn predict_raw(trees: &[Tree], base: f64, lr: f64, row: &[f64]) -> f64 {
    base + lr * trees.iter().map(|t| t.predict_row(row)).sum::<f64>()
}

fn split_importance(trees: &[Tree], n_features: usize) -> Vec<f64> {
    let mut counts = vec![0usize; n_features];
    for tree in trees {
        tree.count_feature_use(&mut counts);
    }
    let total: usize = counts.iter().sum();
    if total == 0 {
        return vec![0.0; n_features];
    }
    counts.into_iter().map(|c| c as f64 / total as f64).collect()
}

/// Gradient-boosted regressor with squared loss.
#[derive(Debug, Clone)]
pub struct GbdtRegressor {
    trees: Vec<Tree>,
    base: f64,
    lr: f64,
    n_features: usize,
}

impl GbdtRegressor {
    /// Fits on column-major `features` and `targets`.
    pub fn fit(features: &Features, targets: &[f64], params: &BoostParams) -> Self {
        validate(features, targets.len());
        let n = targets.len();
        let base = targets.iter().sum::<f64>() / n.max(1) as f64;
        let binned = BinnedFeatures::fit(features, params.max_bins);
        let mut preds = vec![base; n];
        let mut trees = Vec::with_capacity(params.n_trees);
        let hess = vec![1.0f64; n];
        for _ in 0..params.n_trees {
            let grads: Vec<f64> = preds.iter().zip(targets).map(|(p, y)| p - y).collect();
            let tree = Tree::fit(&binned, &grads, &hess, &params.tree);
            for i in 0..n {
                let row: Vec<f64> = features.iter().map(|f| f[i]).collect();
                preds[i] += params.learning_rate * tree.predict_row(&row);
            }
            trees.push(tree);
        }
        Self { trees, base, lr: params.learning_rate, n_features: features.len() }
    }

    /// Predicts one row (`row[j]` = feature `j`).
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.n_features, "feature count mismatch");
        predict_raw(&self.trees, self.base, self.lr, row)
    }

    /// Predicts every row of a column-major feature matrix.
    pub fn predict(&self, features: &Features) -> Vec<f64> {
        let n = features.first().map_or(0, Vec::len);
        (0..n)
            .map(|i| {
                let row: Vec<f64> = features.iter().map(|f| f[i]).collect();
                self.predict_row(&row)
            })
            .collect()
    }

    /// Split-count feature importance, normalised to sum to 1 (all zeros
    /// when no split was made).
    pub fn feature_importance(&self) -> Vec<f64> {
        split_importance(&self.trees, self.n_features)
    }
}

/// Gradient-boosted binary classifier with logistic loss.
#[derive(Debug, Clone)]
pub struct GbdtBinaryClassifier {
    trees: Vec<Tree>,
    base: f64,
    lr: f64,
    n_features: usize,
}

impl GbdtBinaryClassifier {
    /// Fits on column-major `features` and 0/1 `labels`.
    pub fn fit(features: &Features, labels: &[u32], params: &BoostParams) -> Self {
        let _span = silofuse_observe::span("gbdt-fit");
        validate(features, labels.len());
        let n = labels.len();
        let pos = labels.iter().filter(|&&y| y == 1).count() as f64;
        let p0 = (pos / n.max(1) as f64).clamp(1e-6, 1.0 - 1e-6);
        let base = (p0 / (1.0 - p0)).ln();
        let binned = BinnedFeatures::fit(features, params.max_bins);
        let mut raw = vec![base; n];
        let mut trees = Vec::with_capacity(params.n_trees);
        for _ in 0..params.n_trees {
            let mut grads = Vec::with_capacity(n);
            let mut hess = Vec::with_capacity(n);
            for (r, &y) in raw.iter().zip(labels) {
                let p = sigmoid(*r);
                grads.push(p - f64::from(y));
                hess.push((p * (1.0 - p)).max(1e-9));
            }
            let tree = Tree::fit(&binned, &grads, &hess, &params.tree);
            for i in 0..n {
                let row: Vec<f64> = features.iter().map(|f| f[i]).collect();
                raw[i] += params.learning_rate * tree.predict_row(&row);
            }
            trees.push(tree);
        }
        Self { trees, base, lr: params.learning_rate, n_features: features.len() }
    }

    /// Probability of class 1 for one row.
    pub fn predict_proba_row(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.n_features, "feature count mismatch");
        sigmoid(predict_raw(&self.trees, self.base, self.lr, row))
    }

    /// Class-1 probabilities for a column-major feature matrix.
    pub fn predict_proba(&self, features: &Features) -> Vec<f64> {
        let n = features.first().map_or(0, Vec::len);
        (0..n)
            .map(|i| {
                let row: Vec<f64> = features.iter().map(|f| f[i]).collect();
                self.predict_proba_row(&row)
            })
            .collect()
    }

    /// Hard 0/1 predictions at threshold 0.5.
    pub fn predict(&self, features: &Features) -> Vec<u32> {
        self.predict_proba(features).into_iter().map(|p| u32::from(p >= 0.5)).collect()
    }

    /// Split-count feature importance, normalised to sum to 1.
    pub fn feature_importance(&self) -> Vec<f64> {
        split_importance(&self.trees, self.n_features)
    }
}

/// One-vs-rest multiclass classifier built from binary boosters.
#[derive(Debug, Clone)]
pub struct GbdtMulticlass {
    per_class: Vec<GbdtBinaryClassifier>,
}

impl GbdtMulticlass {
    /// Fits `n_classes` one-vs-rest binary classifiers.
    ///
    /// # Panics
    /// Panics if `n_classes < 2` or a label is out of range.
    pub fn fit(features: &Features, labels: &[u32], n_classes: u32, params: &BoostParams) -> Self {
        assert!(n_classes >= 2, "need at least two classes");
        assert!(labels.iter().all(|&y| y < n_classes), "label out of range");
        let per_class = (0..n_classes)
            .map(|c| {
                let binary: Vec<u32> = labels.iter().map(|&y| u32::from(y == c)).collect();
                GbdtBinaryClassifier::fit(features, &binary, params)
            })
            .collect();
        Self { per_class }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.per_class.len()
    }

    /// Normalised per-class probabilities for one row.
    pub fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        let mut p: Vec<f64> = self.per_class.iter().map(|m| m.predict_proba_row(row)).collect();
        let total: f64 = p.iter().sum();
        if total > 0.0 {
            for v in &mut p {
                *v /= total;
            }
        }
        p
    }

    /// Hard class predictions for a column-major feature matrix.
    pub fn predict(&self, features: &Features) -> Vec<u32> {
        let n = features.first().map_or(0, Vec::len);
        (0..n)
            .map(|i| {
                let row: Vec<f64> = features.iter().map(|f| f[i]).collect();
                let p = self.predict_proba_row(&row);
                p.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(c, _)| c as u32)
                    .unwrap_or(0)
            })
            .collect()
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noisy_linear(n: usize, seed: u64) -> (Features, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x0: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let x1: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let y: Vec<f64> =
            x0.iter().zip(&x1).map(|(a, b)| 2.0 * a - b + rng.gen_range(-0.1..0.1)).collect();
        (vec![x0, x1], y)
    }

    #[test]
    fn regressor_fits_linear_function() {
        let (features, y) = noisy_linear(500, 1);
        let model = GbdtRegressor::fit(&features, &y, &BoostParams::default());
        let preds = model.predict(&features);
        let mse: f64 =
            preds.iter().zip(&y).map(|(p, t)| (p - t) * (p - t)).sum::<f64>() / y.len() as f64;
        let var: f64 = {
            let m = y.iter().sum::<f64>() / y.len() as f64;
            y.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / y.len() as f64
        };
        assert!(mse < var * 0.1, "mse {mse} vs var {var}");
    }

    #[test]
    fn regressor_base_is_target_mean_with_no_trees() {
        let (features, y) = noisy_linear(100, 2);
        let params = BoostParams { n_trees: 0, ..Default::default() };
        let model = GbdtRegressor::fit(&features, &y, &params);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((model.predict_row(&[0.0, 0.0]) - mean).abs() < 1e-9);
    }

    #[test]
    fn binary_classifier_separates_halfspaces() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 600;
        let x0: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let x1: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let labels: Vec<u32> = x0.iter().zip(&x1).map(|(a, b)| u32::from(a + b > 0.0)).collect();
        let model = GbdtBinaryClassifier::fit(
            &vec![x0.clone(), x1.clone()],
            &labels,
            &BoostParams::default(),
        );
        let preds = model.predict(&vec![x0, x1]);
        let acc = preds.iter().zip(&labels).filter(|(p, y)| p == y).count() as f64 / n as f64;
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn probabilities_are_calibrated_ordering() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 400;
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let labels: Vec<u32> = x.iter().map(|&v| u32::from(v > 0.0)).collect();
        let model = GbdtBinaryClassifier::fit(&vec![x], &labels, &BoostParams::default());
        assert!(model.predict_proba_row(&[2.5]) > 0.9);
        assert!(model.predict_proba_row(&[-2.5]) < 0.1);
        let p = model.predict_proba_row(&[2.5]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn multiclass_recovers_three_bands() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 900;
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..3.0)).collect();
        let labels: Vec<u32> = x.iter().map(|&v| v.floor() as u32).collect();
        let model = GbdtMulticlass::fit(&vec![x.clone()], &labels, 3, &BoostParams::default());
        let preds = model.predict(&vec![x]);
        let acc = preds.iter().zip(&labels).filter(|(p, y)| p == y).count() as f64 / n as f64;
        assert!(acc > 0.9, "accuracy {acc}");
        let proba = model.predict_proba_row(&[0.5]);
        assert!((proba.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn multiclass_rejects_bad_labels() {
        let _ = GbdtMulticlass::fit(&vec![vec![1.0, 2.0]], &[0, 5], 3, &BoostParams::default());
    }

    #[test]
    fn feature_importance_identifies_informative_features() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 400;
        let signal: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let noise: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let labels: Vec<u32> = signal.iter().map(|&v| u32::from(v > 0.0)).collect();
        // Few shallow trees with a gain threshold: splits concentrate on the
        // informative feature before residuals degenerate to noise-fitting.
        let params = BoostParams {
            n_trees: 8,
            tree: crate::tree::TreeParams { max_depth: 2, gamma: 0.5, ..Default::default() },
            ..Default::default()
        };
        let model = GbdtBinaryClassifier::fit(&vec![noise, signal], &labels, &params);
        let imp = model.feature_importance();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[1] > 0.7, "signal feature importance {imp:?}");
    }

    #[test]
    fn regressor_importance_sums_to_one() {
        let (features, y) = noisy_linear(200, 7);
        let model = GbdtRegressor::fit(&features, &y, &BoostParams::default());
        let imp = model.feature_importance();
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_class_labels_do_not_panic() {
        // Degenerate but must not crash (privacy attacks may hit this).
        let model = GbdtBinaryClassifier::fit(
            &vec![vec![1.0, 2.0, 3.0]],
            &[1, 1, 1],
            &BoostParams::default(),
        );
        assert!(model.predict_proba_row(&[2.0]) > 0.9);
    }

    #[test]
    fn all_negative_labels_keep_base_score_finite() {
        // The mirror-image degenerate case: p0 = 0 would give base score
        // ln(0) = -Inf without the clamp, poisoning every later residual.
        let model = GbdtBinaryClassifier::fit(
            &vec![vec![1.0, 2.0, 3.0, 4.0]],
            &[0, 0, 0, 0],
            &BoostParams::default(),
        );
        let p = model.predict_proba_row(&[2.5]);
        assert!(p.is_finite(), "probability must stay finite, got {p}");
        assert!(p < 0.1, "all-negative training data must predict near zero, got {p}");
    }
}
