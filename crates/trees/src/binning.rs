//! Quantile binning of features for histogram-based tree learning.

/// Column-major feature matrix: `features[j][i]` is feature `j` of row `i`.
pub type Features = Vec<Vec<f64>>;

/// Pre-binned features: per-feature quantile bin edges plus the bin index of
/// every value. Histogram tree learning runs on bins; final split
/// thresholds are translated back to raw values so prediction needs no
/// binning.
#[derive(Debug, Clone)]
pub struct BinnedFeatures {
    /// `edges[j]` is sorted; value `v` falls in bin `partition_point(e <= v)`.
    edges: Vec<Vec<f64>>,
    /// `bins[j][i]`: bin index of row `i` in feature `j`.
    bins: Vec<Vec<u16>>,
    rows: usize,
}

impl BinnedFeatures {
    /// Bins every feature into at most `max_bins` quantile bins.
    ///
    /// # Panics
    /// Panics if `max_bins < 2` or features have inconsistent lengths.
    pub fn fit(features: &[Vec<f64>], max_bins: usize) -> Self {
        assert!(max_bins >= 2, "need at least two bins");
        let rows = features.first().map_or(0, Vec::len);
        assert!(features.iter().all(|f| f.len() == rows), "ragged feature columns");
        let mut edges = Vec::with_capacity(features.len());
        let mut bins = Vec::with_capacity(features.len());
        for feature in features {
            let e = quantile_edges(feature, max_bins);
            let b = feature.iter().map(|&v| e.partition_point(|&edge| edge <= v) as u16).collect();
            edges.push(e);
            bins.push(b);
        }
        Self { edges, bins, rows }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.bins.len()
    }

    /// Number of bins used by feature `j` (edges + 1).
    pub fn n_bins(&self, j: usize) -> usize {
        self.edges[j].len() + 1
    }

    /// Bin index of row `i` in feature `j`.
    #[inline]
    pub fn bin(&self, j: usize, i: usize) -> u16 {
        self.bins[j][i]
    }

    /// The raw threshold corresponding to "bin index <= b" for feature `j`:
    /// rows with value `< edges[j][b]` go left.
    pub fn threshold(&self, j: usize, b: usize) -> f64 {
        self.edges[j][b]
    }
}

/// Distinct quantile cut points (at most `max_bins - 1`).
fn quantile_edges(values: &[f64], max_bins: usize) -> Vec<f64> {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return Vec::new();
    }
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    let mut edges = Vec::with_capacity(max_bins - 1);
    for k in 1..max_bins {
        let idx = (k * n) / max_bins;
        let e = sorted[idx.min(n - 1)];
        // An edge is useful only if some value falls strictly below it.
        if e > sorted[0] && edges.last().map_or(true, |&last| e > last) {
            edges.push(e);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_values_monotonically() {
        let f = vec![(0..100).map(|i| i as f64).collect::<Vec<_>>()];
        let b = BinnedFeatures::fit(&f, 10);
        assert_eq!(b.rows(), 100);
        // Bin indices must be non-decreasing with the value.
        for i in 1..100 {
            assert!(b.bin(0, i) >= b.bin(0, i - 1));
        }
        assert!(b.n_bins(0) <= 10);
    }

    #[test]
    fn nan_bearing_feature_does_not_panic() {
        let mut vals: Vec<f64> = (0..40).map(f64::from).collect();
        vals[7] = f64::NAN;
        vals[23] = f64::INFINITY;
        let b = BinnedFeatures::fit(&[vals], 8);
        assert_eq!(b.rows(), 40);
        assert!(b.n_bins(0) >= 1, "finite values must still be binned");
    }

    #[test]
    fn constant_feature_gets_single_bin() {
        let f = vec![vec![5.0; 50]];
        let b = BinnedFeatures::fit(&f, 16);
        assert_eq!(b.n_bins(0), 1);
        assert!((0..50).all(|i| b.bin(0, i) == 0));
    }

    #[test]
    fn threshold_separates_bins() {
        let f = vec![(0..1000).map(|i| (i % 10) as f64).collect::<Vec<_>>()];
        let b = BinnedFeatures::fit(&f, 32);
        // Each of the 10 distinct values should land in its own bin once
        // enough bins are available; verify threshold semantics.
        for i in 0..1000 {
            let v = (i % 10) as f64;
            let bin = b.bin(0, i) as usize;
            if bin > 0 {
                assert!(v >= b.threshold(0, bin - 1));
            }
            if bin < b.n_bins(0) - 1 {
                assert!(v < b.threshold(0, bin));
            }
        }
    }

    #[test]
    fn skewed_distribution_still_spreads_bins() {
        let f = vec![(0..1000).map(|i| (i as f64).powi(3)).collect::<Vec<_>>()];
        let b = BinnedFeatures::fit(&f, 16);
        assert!(b.n_bins(0) >= 10);
    }
}
