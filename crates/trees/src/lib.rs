//! # silofuse-trees
//!
//! Histogram-based gradient-boosted decision trees — the reproduction's
//! stand-in for XGBoost, which the paper's benchmark framework uses for the
//! propensity discriminator (resemblance score 5) and every downstream
//! utility model (§V-B).
//!
//! Supports squared-loss regression, logistic binary classification, and
//! one-vs-rest multiclass, with quantile-binned histogram splits, L2 leaf
//! regularisation, and shrinkage.
//!
//! ## Example
//!
//! ```
//! use silofuse_trees::{BoostParams, GbdtBinaryClassifier};
//!
//! let x: Vec<f64> = (0..200).map(|i| i as f64 / 100.0 - 1.0).collect();
//! let labels: Vec<u32> = x.iter().map(|&v| u32::from(v > 0.0)).collect();
//! let model = GbdtBinaryClassifier::fit(&vec![x], &labels, &BoostParams::default());
//! assert!(model.predict_proba_row(&[0.9]) > 0.5);
//! ```

#![warn(missing_docs)]

pub mod binning;
pub mod boosting;
pub mod tree;

pub use binning::{BinnedFeatures, Features};
pub use boosting::{BoostParams, GbdtBinaryClassifier, GbdtMulticlass, GbdtRegressor};
pub use tree::{Tree, TreeParams};
