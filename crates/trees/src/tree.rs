//! A single gradient-boosted regression tree with histogram splits.

use crate::binning::BinnedFeatures;

/// Tree-growing hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum hessian sum per child (XGBoost's `min_child_weight`).
    pub min_child_weight: f64,
    /// L2 regularisation on leaf weights.
    pub lambda: f64,
    /// Minimum gain to accept a split.
    pub gamma: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self { max_depth: 4, min_child_weight: 1.0, lambda: 1.0, gamma: 0.0 }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Split { feature: usize, threshold: f64, left: usize, right: usize },
    Leaf { value: f64 },
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// Fits a tree to per-row gradients and hessians on binned features.
    pub fn fit(binned: &BinnedFeatures, grads: &[f64], hess: &[f64], params: &TreeParams) -> Self {
        assert_eq!(grads.len(), binned.rows(), "one gradient per row");
        assert_eq!(hess.len(), binned.rows(), "one hessian per row");
        let mut tree = Tree { nodes: Vec::new() };
        let rows: Vec<u32> = (0..binned.rows() as u32).collect();
        tree.grow(binned, grads, hess, params, rows, 0);
        tree
    }

    /// Recursively grows a node and returns its index.
    fn grow(
        &mut self,
        binned: &BinnedFeatures,
        grads: &[f64],
        hess: &[f64],
        params: &TreeParams,
        rows: Vec<u32>,
        depth: usize,
    ) -> usize {
        let g_total: f64 = rows.iter().map(|&i| grads[i as usize]).sum();
        let h_total: f64 = rows.iter().map(|&i| hess[i as usize]).sum();
        let leaf_value = -g_total / (h_total + params.lambda);

        if depth >= params.max_depth || rows.len() < 2 {
            return self.push_leaf(leaf_value);
        }

        // Best split over all features/bins via histograms.
        let parent_score = g_total * g_total / (h_total + params.lambda);
        let mut best: Option<(usize, usize, f64)> = None; // (feature, bin, gain)
        for j in 0..binned.n_features() {
            let n_bins = binned.n_bins(j);
            if n_bins < 2 {
                continue;
            }
            let mut hist_g = vec![0.0f64; n_bins];
            let mut hist_h = vec![0.0f64; n_bins];
            for &i in &rows {
                let b = binned.bin(j, i as usize) as usize;
                hist_g[b] += grads[i as usize];
                hist_h[b] += hess[i as usize];
            }
            let mut gl = 0.0;
            let mut hl = 0.0;
            for b in 0..n_bins - 1 {
                gl += hist_g[b];
                hl += hist_h[b];
                let gr = g_total - gl;
                let hr = h_total - hl;
                if hl < params.min_child_weight || hr < params.min_child_weight {
                    continue;
                }
                let gain =
                    gl * gl / (hl + params.lambda) + gr * gr / (hr + params.lambda) - parent_score;
                if gain > params.gamma && best.map_or(true, |(_, _, g)| gain > g) {
                    best = Some((j, b, gain));
                }
            }
        }

        let Some((feature, bin, _)) = best else {
            return self.push_leaf(leaf_value);
        };

        let (left_rows, right_rows): (Vec<u32>, Vec<u32>) =
            rows.into_iter().partition(|&i| (binned.bin(feature, i as usize) as usize) <= bin);
        debug_assert!(!left_rows.is_empty() && !right_rows.is_empty());

        let node_idx = self.nodes.len();
        self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
        let left = self.grow(binned, grads, hess, params, left_rows, depth + 1);
        let right = self.grow(binned, grads, hess, params, right_rows, depth + 1);
        self.nodes[node_idx] =
            Node::Split { feature, threshold: binned.threshold(feature, bin), left, right };
        node_idx
    }

    fn push_leaf(&mut self, value: f64) -> usize {
        self.nodes.push(Node::Leaf { value });
        self.nodes.len() - 1
    }

    /// Predicts the tree output for one row (`row[j]` = feature `j`).
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    idx = if row[*feature] < *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Accumulates per-feature split counts into `counts`.
    pub fn count_feature_use(&self, counts: &mut [usize]) {
        for node in &self.nodes {
            if let Node::Split { feature, .. } = node {
                counts[*feature] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Squared-loss gradients toward targets from zero predictions:
    /// grad = pred - y = -y, hess = 1.
    fn grads_for(targets: &[f64]) -> (Vec<f64>, Vec<f64>) {
        (targets.iter().map(|&y| -y).collect(), vec![1.0; targets.len()])
    }

    #[test]
    fn single_split_recovers_step_function() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| if v < 50.0 { -1.0 } else { 1.0 }).collect();
        let binned = BinnedFeatures::fit(std::slice::from_ref(&x), 32);
        let (g, h) = grads_for(&y);
        let tree = Tree::fit(
            &binned,
            &g,
            &h,
            &TreeParams { max_depth: 1, lambda: 0.0, ..Default::default() },
        );
        // Predictions should approximate the step function.
        assert!(tree.predict_row(&[10.0]) < -0.8);
        assert!(tree.predict_row(&[90.0]) > 0.8);
    }

    #[test]
    fn deeper_trees_fit_xor() {
        // XOR needs depth 2. Slightly unbalanced cell counts break the
        // zero-gain tie a perfectly symmetric XOR presents to greedy splits.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let counts = [30, 25, 25, 20];
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..counts[a * 2 + b] {
                    xs.push((a as f64, b as f64));
                    ys.push(if a != b { 1.0 } else { -1.0 });
                }
            }
        }
        let f0: Vec<f64> = xs.iter().map(|p| p.0).collect();
        let f1: Vec<f64> = xs.iter().map(|p| p.1).collect();
        let binned = BinnedFeatures::fit(&[f0, f1], 4);
        let (g, h) = grads_for(&ys);
        let params = TreeParams { max_depth: 2, lambda: 0.0, min_child_weight: 0.5, gamma: 0.0 };
        let tree = Tree::fit(&binned, &g, &h, &params);
        assert!(tree.predict_row(&[0.0, 1.0]) > 0.5);
        assert!(tree.predict_row(&[1.0, 0.0]) > 0.5);
        assert!(tree.predict_row(&[0.0, 0.0]) < -0.5);
        assert!(tree.predict_row(&[1.0, 1.0]) < -0.5);
    }

    #[test]
    fn lambda_shrinks_leaf_values() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y = vec![10.0; 10];
        let binned = BinnedFeatures::fit(&[x], 4);
        let (g, h) = grads_for(&y);
        let plain = Tree::fit(
            &binned,
            &g,
            &h,
            &TreeParams { max_depth: 0, lambda: 0.0, ..Default::default() },
        );
        let reg = Tree::fit(
            &binned,
            &g,
            &h,
            &TreeParams { max_depth: 0, lambda: 10.0, ..Default::default() },
        );
        assert!((plain.predict_row(&[0.0]) - 10.0).abs() < 1e-9);
        assert!(reg.predict_row(&[0.0]) < 6.0);
    }

    #[test]
    fn max_depth_zero_is_single_leaf() {
        let x = vec![vec![1.0, 2.0, 3.0]];
        let binned = BinnedFeatures::fit(&x, 4);
        let tree = Tree::fit(
            &binned,
            &[-1.0, -2.0, -3.0],
            &[1.0; 3],
            &TreeParams { max_depth: 0, lambda: 0.0, ..Default::default() },
        );
        assert_eq!(tree.n_nodes(), 1);
        assert!((tree.predict_row(&[9.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn min_child_weight_blocks_tiny_splits() {
        let x: Vec<f64> = (0..4).map(|i| i as f64).collect();
        let y = vec![-1.0, -1.0, -1.0, 1.0];
        let binned = BinnedFeatures::fit(&[x], 8);
        let (g, h) = grads_for(&y);
        let strict = TreeParams { max_depth: 3, min_child_weight: 10.0, lambda: 0.0, gamma: 0.0 };
        let tree = Tree::fit(&binned, &g, &h, &strict);
        assert_eq!(tree.n_nodes(), 1, "split should be blocked");
    }

    #[test]
    fn feature_use_counts_splits() {
        let f0: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let f1 = vec![0.0; 100]; // useless feature
        let y: Vec<f64> = (0..100).map(|i| if i < 50 { -1.0 } else { 1.0 }).collect();
        let binned = BinnedFeatures::fit(&[f0, f1], 16);
        let (g, h) = grads_for(&y);
        let tree = Tree::fit(&binned, &g, &h, &TreeParams::default());
        let mut counts = vec![0usize; 2];
        tree.count_feature_use(&mut counts);
        assert!(counts[0] >= 1);
        assert_eq!(counts[1], 0);
    }
}
