//! # silofuse-metrics
//!
//! The paper's benchmark framework (§V-B): a composite **resemblance**
//! score built from five statistical similarities, a **utility** score from
//! train-on-synthetic / test-on-real downstream models, and a **privacy**
//! score from three attacks (singling-out, linkability, attribute
//! inference). Also provides the association-matrix machinery behind the
//! Table V correlation-difference heatmaps.
//!
//! All scores are on the paper's 0–100 scale with higher = better
//! (for privacy: higher = more resistant).

#![warn(missing_docs)]

pub mod correlation;
pub mod features;
pub mod privacy;
pub mod resemblance;
pub mod stats;
pub mod utility;

pub use correlation::{correlation_difference, CorrelationDifference};
pub use privacy::{privacy, PrivacyConfig, PrivacyReport};
pub use resemblance::{
    per_column_report, resemblance, ColumnReport, ResemblanceConfig, ResemblanceReport,
};
pub use utility::{utility, UtilityConfig, UtilityReport};
