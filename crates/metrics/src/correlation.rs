//! Pairwise association matrices and real-vs-synthetic correlation
//! differences (Table V's heatmaps).

use crate::stats::{correlation_ratio, pearson, theils_u};
use silofuse_tabular::schema::ColumnKind;
use silofuse_tabular::table::{Column, Table};

/// Pairwise association matrix of a table, `d x d` row-major:
/// Pearson |r| for numeric–numeric pairs, Theil's U for categorical pairs
/// (symmetrised by averaging both directions), and the correlation ratio η
/// for mixed pairs. All entries are in `[0, 1]`; the diagonal is 1.
pub fn association_matrix(table: &Table) -> Vec<f64> {
    let d = table.n_cols();
    let mut m = vec![0.0f64; d * d];
    for i in 0..d {
        m[i * d + i] = 1.0;
        for j in (i + 1)..d {
            let v = association(table, i, j);
            m[i * d + j] = v;
            m[j * d + i] = v;
        }
    }
    m
}

fn cardinality(table: &Table, col: usize) -> usize {
    match table.schema().columns()[col].kind {
        ColumnKind::Categorical { cardinality } => cardinality as usize,
        ColumnKind::Numeric => 0,
    }
}

/// Association strength between two columns, in `[0, 1]`.
pub fn association(table: &Table, i: usize, j: usize) -> f64 {
    match (table.column(i), table.column(j)) {
        (Column::Numeric(a), Column::Numeric(b)) => pearson(a, b).abs(),
        (Column::Categorical(a), Column::Categorical(b)) => {
            let ci = cardinality(table, i);
            let cj = cardinality(table, j);
            0.5 * (theils_u(a, b, ci, cj) + theils_u(b, a, cj, ci))
        }
        (Column::Categorical(g), Column::Numeric(v)) => {
            correlation_ratio(g, v, cardinality(table, i))
        }
        (Column::Numeric(v), Column::Categorical(g)) => {
            correlation_ratio(g, v, cardinality(table, j))
        }
    }
}

/// Element-wise absolute difference between real and synthetic association
/// matrices, plus its mean over off-diagonal entries — the quantity Table V
/// visualises (darker = larger difference = worse).
pub struct CorrelationDifference {
    /// `d x d` row-major |Δ| matrix.
    pub matrix: Vec<f64>,
    /// Number of columns `d`.
    pub dim: usize,
    /// Mean off-diagonal |Δ|.
    pub mean_abs_diff: f64,
}

/// Computes the correlation-difference summary between `real` and `synth`.
///
/// # Panics
/// Panics if the schemas differ.
pub fn correlation_difference(real: &Table, synth: &Table) -> CorrelationDifference {
    assert_eq!(real.schema(), synth.schema(), "schema mismatch");
    let d = real.n_cols();
    let mr = association_matrix(real);
    let ms = association_matrix(synth);
    let matrix: Vec<f64> = mr.iter().zip(&ms).map(|(a, b)| (a - b).abs()).collect();
    let mut sum = 0.0;
    let mut count = 0usize;
    for i in 0..d {
        for j in 0..d {
            if i != j {
                sum += matrix[i * d + j];
                count += 1;
            }
        }
    }
    CorrelationDifference {
        matrix,
        dim: d,
        mean_abs_diff: if count == 0 { 0.0 } else { sum / count as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silofuse_tabular::profiles;
    use silofuse_tabular::schema::{ColumnMeta, Schema};
    use silofuse_tabular::table::Column as Col;

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let t = profiles::loan().generate(256, 0);
        let d = t.n_cols();
        let m = association_matrix(&t);
        for i in 0..d {
            assert!((m[i * d + i] - 1.0).abs() < 1e-12);
            for j in 0..d {
                assert!((m[i * d + j] - m[j * d + i]).abs() < 1e-12);
                assert!((0.0..=1.0).contains(&m[i * d + j]));
            }
        }
    }

    #[test]
    fn identical_tables_have_zero_difference() {
        let t = profiles::diabetes().generate(128, 1);
        let diff = correlation_difference(&t, &t);
        assert_eq!(diff.mean_abs_diff, 0.0);
        assert!(diff.matrix.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn shuffled_columns_increase_difference() {
        // Breaking the row alignment of one column destroys its
        // associations, so |Δ| must grow.
        let t = profiles::loan().generate(512, 2);
        let mut cols: Vec<Col> = t.columns().to_vec();
        // Reverse every numeric column independently of the categoricals:
        // numeric-numeric correlations survive (all reversed in lockstep)
        // but numeric-categorical associations are destroyed.
        for &idx in &t.schema().numeric_indices() {
            if let Col::Numeric(v) = &mut cols[idx] {
                v.reverse();
            }
        }
        let shuffled = Table::new(t.schema().clone(), cols).unwrap();
        let diff = correlation_difference(&t, &shuffled);
        assert!(diff.mean_abs_diff > 0.005, "mean |Δ| = {}", diff.mean_abs_diff);
        let max = diff.matrix.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > 0.05, "max |Δ| = {max}");
    }

    #[test]
    fn mixed_pair_association_detects_dependence() {
        // Numeric column fully determined by the categorical one.
        let schema = Schema::new(vec![ColumnMeta::categorical("g", 2), ColumnMeta::numeric("v")]);
        let g = vec![0u32, 0, 1, 1, 0, 1];
        let v: Vec<f64> = g.iter().map(|&c| f64::from(c) * 10.0).collect();
        let t = Table::new(schema, vec![Col::Categorical(g), Col::Numeric(v)]).unwrap();
        assert!(association(&t, 0, 1) > 0.99);
    }
}
