//! The utility score (§V-B): train-on-synthetic / test-on-real downstream
//! performance, relative to train-on-real.
//!
//! For each evaluated column, a GBDT model predicts that column from the
//! others. Performance is macro-F1 for categorical targets and the D²
//! absolute-error score for numeric targets. The per-training-set
//! performance is the 90th percentile over evaluated columns, and
//! `utility = 100 · perf(synthetic) / perf(real)`, clipped at 100.

use crate::features::{categorical_targets, numeric_targets, row_features, table_to_features};
use crate::stats::{d2_absolute_error, macro_f1, percentile};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use silofuse_tabular::schema::ColumnKind;
use silofuse_tabular::table::Table;
use silofuse_trees::{BoostParams, GbdtBinaryClassifier, GbdtMulticlass, GbdtRegressor};

/// Utility computation settings.
#[derive(Debug, Clone, Copy)]
pub struct UtilityConfig {
    /// Boosting parameters for every downstream model.
    pub params: BoostParams,
    /// Maximum number of target columns to evaluate (seeded subsample when
    /// the table is wider); the paper evaluates all columns.
    pub max_targets: usize,
    /// Seed for target subsampling.
    pub seed: u64,
    /// Percentile of per-column scores used as the dataset performance
    /// (paper: 90).
    pub performance_percentile: f64,
}

impl Default for UtilityConfig {
    fn default() -> Self {
        Self {
            params: BoostParams { n_trees: 40, ..Default::default() },
            max_targets: 8,
            seed: 0,
            performance_percentile: 90.0,
        }
    }
}

/// The utility report.
#[derive(Debug, Clone)]
pub struct UtilityReport {
    /// Downstream performance when training on real data (90th-percentile
    /// column score, in `[0, 1]`).
    pub real_performance: f64,
    /// Downstream performance when training on synthetic data.
    pub synthetic_performance: f64,
    /// `100 · synth / real`, clipped to `[0, 100]`.
    pub score: f64,
    /// Which columns were evaluated.
    pub evaluated_columns: Vec<usize>,
}

/// Computes the utility score.
///
/// `real_train` and `synth` are alternative training sets; `holdout` is real
/// data never used for training.
///
/// # Panics
/// Panics if schemas differ or tables are empty.
pub fn utility(
    real_train: &Table,
    synth: &Table,
    holdout: &Table,
    config: &UtilityConfig,
) -> UtilityReport {
    assert_eq!(real_train.schema(), synth.schema(), "schema mismatch");
    assert_eq!(real_train.schema(), holdout.schema(), "schema mismatch");
    assert!(holdout.n_rows() > 0, "empty holdout");

    // Pick target columns: seeded subsample, always including the last
    // column (the dataset's designated downstream label).
    let d = real_train.n_cols();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut candidates: Vec<usize> = (0..d.saturating_sub(1)).collect();
    candidates.shuffle(&mut rng);
    let mut targets: Vec<usize> =
        candidates.into_iter().take(config.max_targets.saturating_sub(1)).collect();
    targets.push(d - 1);
    targets.sort_unstable();

    let real_scores: Vec<f64> =
        targets.iter().map(|&c| column_score(real_train, holdout, c, &config.params)).collect();
    let synth_scores: Vec<f64> =
        targets.iter().map(|&c| column_score(synth, holdout, c, &config.params)).collect();

    let real_perf = percentile(&real_scores, config.performance_percentile).max(1e-6);
    let synth_perf = percentile(&synth_scores, config.performance_percentile).max(0.0);
    let score = (100.0 * synth_perf / real_perf).clamp(0.0, 100.0);
    UtilityReport {
        real_performance: real_perf,
        synthetic_performance: synth_perf,
        score,
        evaluated_columns: targets,
    }
}

/// Trains a model on `train` predicting column `target` and scores it on
/// `holdout`: macro-F1 (categorical) or D² absolute error (numeric),
/// clamped to `[0, 1]`.
pub fn column_score(train: &Table, holdout: &Table, target: usize, params: &BoostParams) -> f64 {
    let feats_train = table_to_features(train, Some(target));
    match train.schema().columns()[target].kind {
        ColumnKind::Categorical { cardinality } => {
            let labels = categorical_targets(train, target);
            let truth = categorical_targets(holdout, target);
            let preds: Vec<u32> = if cardinality <= 2 {
                let model = GbdtBinaryClassifier::fit(&feats_train, &labels, params);
                (0..holdout.n_rows())
                    .map(|r| {
                        let row = row_features(holdout, r, Some(target));
                        u32::from(model.predict_proba_row(&row) >= 0.5)
                    })
                    .collect()
            } else {
                // High-cardinality targets would need `cardinality` binary
                // models; cap the expense by collapsing rare classes into
                // the most frequent ones via OvR on the top classes.
                let k = cardinality.min(12);
                let capped: Vec<u32> = labels.iter().map(|&y| y.min(k - 1)).collect();
                let model = GbdtMulticlass::fit(&feats_train, &capped, k, params);
                (0..holdout.n_rows())
                    .map(|r| {
                        let row = row_features(holdout, r, Some(target));
                        let p = model.predict_proba_row(&row);
                        p.iter()
                            .enumerate()
                            .max_by(|a, b| a.1.total_cmp(b.1))
                            .map(|(c, _)| c as u32)
                            .unwrap_or(0)
                    })
                    .collect()
            };
            let truth_capped: Vec<u32> =
                if cardinality > 12 { truth.iter().map(|&y| y.min(11)).collect() } else { truth };
            macro_f1(&truth_capped, &preds, cardinality.min(12)).clamp(0.0, 1.0)
        }
        ColumnKind::Numeric => {
            let y = numeric_targets(train, target);
            let model = GbdtRegressor::fit(&feats_train, &y, params);
            let truth = numeric_targets(holdout, target);
            let preds: Vec<f64> = (0..holdout.n_rows())
                .map(|r| model.predict_row(&row_features(holdout, r, Some(target))))
                .collect();
            d2_absolute_error(&truth, &preds).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silofuse_tabular::profiles;
    use silofuse_tabular::split::train_holdout_split;

    #[test]
    fn real_as_synthetic_scores_near_100() {
        let t = profiles::loan().generate(768, 0);
        let (train, holdout) = train_holdout_split(&t, 0.25, 0);
        // Use a *second sample from the same population* as "synthetic".
        let synth = profiles::loan().generate(576, 1);
        let report = utility(&train, &synth, &holdout, &UtilityConfig::default());
        assert!(report.score > 80.0, "score {}", report.score);
    }

    #[test]
    fn garbage_synthetic_scores_low() {
        let t = profiles::loan().generate(768, 2);
        let (train, holdout) = train_holdout_split(&t, 0.25, 2);
        // Independent features with shuffled label relationship.
        let mut gen = profiles::loan().generator(77);
        gen.correlation_strength = 0.0;
        gen.seed ^= 0xdead;
        let garbage = gen.generate(576, 9);
        let good = utility(
            &train,
            &profiles::loan().generate(576, 3),
            &holdout,
            &UtilityConfig::default(),
        );
        let bad = utility(&train, &garbage, &holdout, &UtilityConfig::default());
        assert!(
            bad.score < good.score,
            "garbage {} should underperform good {}",
            bad.score,
            good.score
        );
    }

    #[test]
    fn evaluated_columns_include_label() {
        let t = profiles::diabetes().generate(256, 4);
        let (train, holdout) = train_holdout_split(&t, 0.25, 4);
        let report = utility(&train, &train, &holdout, &UtilityConfig::default());
        assert!(report.evaluated_columns.contains(&(t.n_cols() - 1)));
        assert!(report.evaluated_columns.len() <= 8);
    }

    #[test]
    fn column_score_regression_sane() {
        let t = profiles::abalone().generate(512, 5);
        let (train, holdout) = train_holdout_split(&t, 0.25, 5);
        let target = t.n_cols() - 1; // regression target
        let s = column_score(&train, &holdout, target, &BoostParams::default());
        assert!((0.0..=1.0).contains(&s));
        assert!(s > 0.2, "real-data regression should beat the median baseline: {s}");
    }

    #[test]
    fn scores_bounded() {
        let t = profiles::diabetes().generate(192, 6);
        let (train, holdout) = train_holdout_split(&t, 0.3, 6);
        let r = utility(&train, &train, &holdout, &UtilityConfig::default());
        assert!((0.0..=100.0).contains(&r.score));
    }
}
