//! Privacy risk quantification (§V-B, §V-F): singling-out, linkability, and
//! attribute-inference attacks on *shared* synthetic data, following the
//! Anonymeter-style evaluation the paper cites (refs. 51 and 52).
//!
//! Each attack's success rate is normalised against a naive baseline:
//! `risk = max(0, (success − baseline) / (1 − baseline))`, and the privacy
//! score is `100 · (1 − risk)`; higher is more private. The composite is
//! the mean of the three attack scores.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silofuse_tabular::schema::ColumnKind;
use silofuse_tabular::table::{Column, Table};

/// Privacy evaluation settings.
#[derive(Debug, Clone, Copy)]
pub struct PrivacyConfig {
    /// Number of attack attempts per attack type.
    pub attempts: usize,
    /// Attributes per singling-out predicate.
    pub predicate_width: usize,
    /// Numeric tolerance for predicates/attribute hits, as a fraction of
    /// the column's range.
    pub tolerance: f64,
    /// Top-k neighbourhood for the linkability attack.
    pub link_top_k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PrivacyConfig {
    fn default() -> Self {
        Self { attempts: 200, predicate_width: 3, tolerance: 0.05, link_top_k: 5, seed: 0 }
    }
}

/// Per-attack and composite privacy scores (0–100, higher = more private).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyReport {
    /// Resistance to the singling-out attack.
    pub singling_out: f64,
    /// Resistance to the linkability attack.
    pub linkability: f64,
    /// Resistance to the attribute-inference attack.
    pub attribute_inference: f64,
    /// Mean of the three.
    pub composite: f64,
}

/// Evaluates all three attacks of `synth` against `real`.
///
/// # Panics
/// Panics if schemas differ or either table is empty.
pub fn privacy(real: &Table, synth: &Table, config: &PrivacyConfig) -> PrivacyReport {
    assert_eq!(real.schema(), synth.schema(), "schema mismatch");
    assert!(real.n_rows() > 0 && synth.n_rows() > 0, "empty table");
    let ranges = column_ranges(real);
    let singling_out = singling_out_score(real, synth, &ranges, config);
    let linkability = linkability_score(real, synth, &ranges, config);
    let attribute_inference = attribute_inference_score(real, synth, &ranges, config);
    PrivacyReport {
        singling_out,
        linkability,
        attribute_inference,
        composite: (singling_out + linkability + attribute_inference) / 3.0,
    }
}

fn normalise_risk(attack_success: f64, baseline_success: f64) -> f64 {
    let denom = (1.0 - baseline_success).max(1e-9);
    ((attack_success - baseline_success) / denom).clamp(0.0, 1.0)
}

/// Per-column `(lo, hi)` ranges (for numerics) used in tolerances.
fn column_ranges(table: &Table) -> Vec<(f64, f64)> {
    table
        .columns()
        .iter()
        .map(|col| match col {
            Column::Numeric(v) => {
                let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                if !lo.is_finite() || !hi.is_finite() {
                    return (0.0, 1.0);
                }
                // A constant column has `hi == lo`; an absolute nudge like
                // `lo + 1e-12` is absorbed at large magnitudes (1e9 + 1e-12
                // rounds back to 1e9), leaving a zero-width range and
                // degenerate (exact-match) tolerances. Floor the width
                // relative to the column's magnitude instead.
                let min_width = 1e-9 * lo.abs().max(hi.abs()).max(1.0);
                (lo, hi.max(lo + min_width))
            }
            Column::Categorical(_) => (0.0, 0.0),
        })
        .collect()
}

/// A conjunction of per-column conditions used by the singling-out attack.
struct Predicate {
    /// `(column, value, tolerance)`; tolerance is 0 for categoricals.
    conditions: Vec<(usize, f64, f64)>,
}

impl Predicate {
    fn matches(&self, table: &Table, row: usize) -> bool {
        self.conditions.iter().all(|&(col, value, tol)| match table.column(col) {
            Column::Numeric(v) => (v[row] - value).abs() <= tol,
            Column::Categorical(codes) => f64::from(codes[row]) == value,
        })
    }

    fn count_matches(&self, table: &Table) -> usize {
        (0..table.n_rows()).filter(|&r| self.matches(table, r)).count()
    }
}

/// Singling-out [51]: the attacker crafts predicates from synthetic records
/// and succeeds when a predicate isolates exactly one real record. The
/// baseline attacker samples predicate values uniformly at random.
fn singling_out_score(
    real: &Table,
    synth: &Table,
    ranges: &[(f64, f64)],
    config: &PrivacyConfig,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x51);
    let d = real.n_cols();
    let width = config.predicate_width.min(d);

    let mut attack_hits = 0usize;
    let mut baseline_hits = 0usize;
    for _ in 0..config.attempts {
        // Attack predicate from a random synthetic record.
        let srow = rng.gen_range(0..synth.n_rows());
        let cols = sample_columns(d, width, &mut rng);
        let attack = Predicate {
            conditions: cols
                .iter()
                .map(|&c| match synth.column(c) {
                    Column::Numeric(v) => {
                        (c, v[srow], config.tolerance * (ranges[c].1 - ranges[c].0))
                    }
                    Column::Categorical(codes) => (c, f64::from(codes[srow]), 0.0),
                })
                .collect(),
        };
        if attack.count_matches(real) == 1 {
            attack_hits += 1;
        }
        // Baseline predicate with random values.
        let cols = sample_columns(d, width, &mut rng);
        let baseline = Predicate {
            conditions: cols
                .iter()
                .map(|&c| match real.schema().columns()[c].kind {
                    ColumnKind::Numeric => {
                        let (lo, hi) = ranges[c];
                        (c, rng.gen_range(lo..=hi), config.tolerance * (hi - lo))
                    }
                    ColumnKind::Categorical { cardinality } => {
                        (c, f64::from(rng.gen_range(0..cardinality)), 0.0)
                    }
                })
                .collect(),
        };
        if baseline.count_matches(real) == 1 {
            baseline_hits += 1;
        }
    }
    let risk = normalise_risk(
        attack_hits as f64 / config.attempts as f64,
        baseline_hits as f64 / config.attempts as f64,
    );
    100.0 * (1.0 - risk)
}

fn sample_columns(d: usize, width: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut cols: Vec<usize> = (0..d).collect();
    for i in (1..cols.len()).rev() {
        let j = rng.gen_range(0..=i);
        cols.swap(i, j);
    }
    cols.truncate(width);
    cols
}

/// Gower-style distance between a real row and a synthetic row over the
/// given columns: normalised absolute difference for numerics, 0/1 mismatch
/// for categoricals.
fn gower(
    real: &Table,
    r: usize,
    synth: &Table,
    s: usize,
    cols: &[usize],
    ranges: &[(f64, f64)],
) -> f64 {
    let mut total = 0.0;
    for &c in cols {
        total += match (real.column(c), synth.column(c)) {
            (Column::Numeric(a), Column::Numeric(b)) => {
                let (lo, hi) = ranges[c];
                ((a[r] - b[s]).abs() / (hi - lo)).min(1.0)
            }
            (Column::Categorical(a), Column::Categorical(b)) => f64::from(u8::from(a[r] != b[s])),
            _ => unreachable!("schemas matched"),
        };
    }
    total / cols.len().max(1) as f64
}

/// Indices of the `k` nearest synthetic rows to real row `r` over `cols`.
fn top_k_neighbours(
    real: &Table,
    r: usize,
    synth: &Table,
    cols: &[usize],
    ranges: &[(f64, f64)],
    k: usize,
) -> Vec<usize> {
    let mut dists: Vec<(f64, usize)> =
        (0..synth.n_rows()).map(|s| (gower(real, r, synth, s, cols, ranges), s)).collect();
    dists.sort_by(|a, b| a.0.total_cmp(&b.0));
    dists.into_iter().take(k).map(|(_, s)| s).collect()
}

/// Linkability [51]: real features are split into two disjoint halves (the
/// cross-silo scenario). For a target record, the attacker finds its
/// nearest synthetic neighbours using each half independently and succeeds
/// when the neighbourhoods intersect — evidence the synthetic data links
/// the two halves of that individual. Baseline: random neighbourhoods.
fn linkability_score(
    real: &Table,
    synth: &Table,
    ranges: &[(f64, f64)],
    config: &PrivacyConfig,
) -> f64 {
    let d = real.n_cols();
    if d < 2 {
        return 100.0;
    }
    let half_a: Vec<usize> = (0..d / 2).collect();
    let half_b: Vec<usize> = (d / 2..d).collect();
    let k = config.link_top_k.min(synth.n_rows());
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x117);

    let mut attack_hits = 0usize;
    let mut baseline_hits = 0usize;
    for _ in 0..config.attempts {
        let target = rng.gen_range(0..real.n_rows());
        let nn_a = top_k_neighbours(real, target, synth, &half_a, ranges, k);
        let nn_b = top_k_neighbours(real, target, synth, &half_b, ranges, k);
        if nn_a.iter().any(|i| nn_b.contains(i)) {
            attack_hits += 1;
        }
        // Baseline: two random k-subsets of the synthetic rows.
        let rand_a: Vec<usize> = (0..k).map(|_| rng.gen_range(0..synth.n_rows())).collect();
        let rand_b: Vec<usize> = (0..k).map(|_| rng.gen_range(0..synth.n_rows())).collect();
        if rand_a.iter().any(|i| rand_b.contains(i)) {
            baseline_hits += 1;
        }
    }
    let risk = normalise_risk(
        attack_hits as f64 / config.attempts as f64,
        baseline_hits as f64 / config.attempts as f64,
    );
    100.0 * (1.0 - risk)
}

/// Attribute inference [52]: the attacker knows every attribute of a target
/// real record except one secret column, finds the nearest synthetic
/// neighbour on the known columns, and predicts the secret from it.
/// Baseline: predict the secret's mode (categorical) / median (numeric).
fn attribute_inference_score(
    real: &Table,
    synth: &Table,
    ranges: &[(f64, f64)],
    config: &PrivacyConfig,
) -> f64 {
    let d = real.n_cols();
    if d < 2 {
        return 100.0;
    }
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xa1);

    let mut attack_hits = 0usize;
    let mut baseline_hits = 0usize;
    for _ in 0..config.attempts {
        let target = rng.gen_range(0..real.n_rows());
        let secret = rng.gen_range(0..d);
        let known: Vec<usize> = (0..d).filter(|&c| c != secret).collect();
        let nn = top_k_neighbours(real, target, synth, &known, ranges, 1)[0];

        let hit = |prediction: f64| -> bool {
            match real.column(secret) {
                Column::Numeric(v) => {
                    let (lo, hi) = ranges[secret];
                    (v[target] - prediction).abs() <= config.tolerance * (hi - lo)
                }
                Column::Categorical(codes) => f64::from(codes[target]) == prediction,
            }
        };

        let attack_pred = match synth.column(secret) {
            Column::Numeric(v) => v[nn],
            Column::Categorical(codes) => f64::from(codes[nn]),
        };
        if hit(attack_pred) {
            attack_hits += 1;
        }

        let baseline_pred = match synth.column(secret) {
            Column::Numeric(v) => {
                let mut sorted = v.clone();
                sorted.sort_by(|a, b| a.total_cmp(b));
                sorted[sorted.len() / 2]
            }
            Column::Categorical(codes) => {
                let mut counts = std::collections::HashMap::new();
                for &c in codes {
                    *counts.entry(c).or_insert(0usize) += 1;
                }
                f64::from(counts.into_iter().max_by_key(|&(_, n)| n).map(|(c, _)| c).unwrap_or(0))
            }
        };
        if hit(baseline_pred) {
            baseline_hits += 1;
        }
    }
    let risk = normalise_risk(
        attack_hits as f64 / config.attempts as f64,
        baseline_hits as f64 / config.attempts as f64,
    );
    100.0 * (1.0 - risk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use silofuse_tabular::profiles;

    fn quick_config() -> PrivacyConfig {
        PrivacyConfig { attempts: 80, ..Default::default() }
    }

    #[test]
    fn leaking_the_training_data_scores_worst() {
        let real = profiles::loan().generate(256, 0);
        // Worst case: "synthetic" data IS the real data.
        let leak = privacy(&real, &real, &quick_config());
        // Honest case: an independent draw from the same population.
        let fresh = profiles::loan().generate(256, 1);
        let ok = privacy(&real, &fresh, &quick_config());
        assert!(
            leak.composite < ok.composite,
            "verbatim leak {} must score below fresh draw {}",
            leak.composite,
            ok.composite
        );
        assert!(leak.attribute_inference <= ok.attribute_inference + 1e-9);
    }

    #[test]
    fn scores_are_bounded() {
        let real = profiles::diabetes().generate(128, 2);
        let synth = profiles::diabetes().generate(128, 3);
        let p = privacy(&real, &synth, &quick_config());
        for v in [p.singling_out, p.linkability, p.attribute_inference, p.composite] {
            assert!((0.0..=100.0).contains(&v), "{p:?}");
        }
    }

    #[test]
    fn independent_noise_scores_high() {
        let real = profiles::diabetes().generate(128, 4);
        // Synthetic from an unrelated population: attacker learns nothing.
        let mut gen = profiles::diabetes().generator(123);
        gen.correlation_strength = 0.0;
        gen.seed ^= 0xbeef;
        let noise = gen.generate(128, 9);
        let p = privacy(&real, &noise, &quick_config());
        assert!(p.composite > 60.0, "composite {}", p.composite);
    }

    #[test]
    fn deterministic_given_seed() {
        let real = profiles::diabetes().generate(96, 5);
        let synth = profiles::diabetes().generate(96, 6);
        let a = privacy(&real, &synth, &quick_config());
        let b = privacy(&real, &synth, &quick_config());
        assert_eq!(a, b);
    }

    #[test]
    fn constant_columns_get_a_nonzero_range_width() {
        use silofuse_tabular::schema::{ColumnMeta, Schema};
        // A constant column must still yield a usable (non-zero-width)
        // range — including at magnitudes where `lo + 1e-12` would be
        // absorbed by f64 rounding.
        let schema = Schema::new(vec![
            ColumnMeta::numeric("small_const"),
            ColumnMeta::numeric("big_const"),
            ColumnMeta::numeric("varying"),
        ]);
        let t = Table::new(
            schema,
            vec![
                Column::Numeric(vec![0.5; 6]),
                Column::Numeric(vec![1e9; 6]),
                Column::Numeric(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]),
            ],
        )
        .unwrap();
        let ranges = column_ranges(&t);
        for (i, &(lo, hi)) in ranges.iter().enumerate() {
            assert!(hi > lo, "column {i}: range ({lo}, {hi}) has zero width");
        }
        // The floor is relative: a tolerance derived from the big constant's
        // width must still accept the constant value itself.
        let (lo, hi) = ranges[1];
        let tol = PrivacyConfig::default().tolerance * (hi - lo);
        assert!(tol > 0.0 && (1e9f64 - 1e9f64).abs() <= tol);
        // The varying column's true span is untouched by the floor.
        assert_eq!(ranges[2], (0.0, 5.0));
    }

    #[test]
    fn privacy_attacks_survive_constant_columns() {
        use silofuse_tabular::schema::{ColumnMeta, Schema};
        let schema = Schema::new(vec![
            ColumnMeta::numeric("const"),
            ColumnMeta::numeric("x"),
            ColumnMeta::categorical("c", 3),
        ]);
        let make = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 64;
            let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let c: Vec<u32> = (0..n).map(|_| rng.gen_range(0..3)).collect();
            Table::new(
                schema.clone(),
                vec![Column::Numeric(vec![7.25e8; n]), Column::Numeric(x), Column::Categorical(c)],
            )
            .unwrap()
        };
        let p = privacy(&make(1), &make(2), &quick_config());
        for v in [p.singling_out, p.linkability, p.attribute_inference, p.composite] {
            assert!(v.is_finite() && (0.0..=100.0).contains(&v), "{p:?}");
        }
    }

    #[test]
    fn row_features_helper_used_consistently() {
        // Silence the unused-import lint path by exercising row_features on
        // the same tables the attacks see.
        let t = profiles::diabetes().generate(8, 7);
        assert_eq!(crate::features::row_features(&t, 0, None).len(), t.n_cols());
    }
}
