//! The resemblance score (§V-B): the mean of five statistical similarities
//! between real and synthetic data, each in `[0, 1]`, reported 0–100.

use crate::correlation::correlation_difference;
use crate::features::table_to_features;
use crate::stats::{
    category_frequencies, histogram, jensen_shannon_distance, ks_statistic, pearson,
    quantile_profile, total_variation,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silofuse_tabular::schema::ColumnKind;
use silofuse_tabular::table::{Column, Table};
use silofuse_trees::{BoostParams, GbdtBinaryClassifier};

/// The five component scores plus the composite (all 0–100).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResemblanceReport {
    /// Per-column marginal similarity (quantile-profile Pearson for
    /// numerics, 1 − total-variation for categoricals).
    pub column_similarity: f64,
    /// Similarity of the pairwise association matrices.
    pub correlation_similarity: f64,
    /// `1 −` Jensen–Shannon distance, averaged over columns.
    pub jensen_shannon: f64,
    /// `1 −` Kolmogorov–Smirnov statistic, averaged over columns.
    pub kolmogorov_smirnov: f64,
    /// Propensity mean-absolute similarity (GBDT discriminator).
    pub propensity: f64,
    /// Mean of the five scores.
    pub composite: f64,
}

/// Configuration for the resemblance computation.
#[derive(Debug, Clone, Copy)]
pub struct ResemblanceConfig {
    /// Histogram bins for the JS score on numerics.
    pub js_bins: usize,
    /// Quantile points for the column-similarity score.
    pub quantile_points: usize,
    /// Boosting parameters for the propensity discriminator.
    pub propensity_params: BoostParams,
    /// Seed for the propensity train/test split.
    pub seed: u64,
}

impl Default for ResemblanceConfig {
    fn default() -> Self {
        Self {
            js_bins: 20,
            quantile_points: 50,
            propensity_params: BoostParams { n_trees: 40, ..Default::default() },
            seed: 0,
        }
    }
}

/// Per-column breakdown of the distribution-level scores (0–100), for
/// debugging *which* columns a synthesizer fails on.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnReport {
    /// Column name.
    pub name: String,
    /// Marginal similarity (score 1's per-column term).
    pub column_similarity: f64,
    /// `1 −` Jensen–Shannon distance.
    pub jensen_shannon: f64,
    /// `1 −` KS statistic (total variation for categoricals).
    pub kolmogorov_smirnov: f64,
}

/// Computes the per-column scores feeding resemblance scores 1, 3, and 4.
///
/// # Panics
/// Panics if the schemas differ.
pub fn per_column_report(
    real: &Table,
    synth: &Table,
    config: &ResemblanceConfig,
) -> Vec<ColumnReport> {
    assert_eq!(real.schema(), synth.schema(), "schema mismatch");
    real.schema()
        .columns()
        .iter()
        .enumerate()
        .map(|(idx, meta)| ColumnReport {
            name: meta.name.clone(),
            column_similarity: 100.0
                * column_similarity_at(real, synth, idx, config.quantile_points),
            jensen_shannon: 100.0 * js_similarity_at(real, synth, idx, config.js_bins),
            kolmogorov_smirnov: 100.0 * ks_similarity_at(real, synth, idx),
        })
        .collect()
}

/// Computes the resemblance report between `real` and `synth`.
///
/// # Panics
/// Panics if the schemas differ or either table is empty.
pub fn resemblance(real: &Table, synth: &Table, config: &ResemblanceConfig) -> ResemblanceReport {
    assert_eq!(real.schema(), synth.schema(), "schema mismatch");
    assert!(real.n_rows() > 0 && synth.n_rows() > 0, "empty table");

    let column_similarity = column_similarity(real, synth, config.quantile_points);
    let correlation_similarity = 1.0 - correlation_difference(real, synth).mean_abs_diff;
    let jensen_shannon = js_similarity(real, synth, config.js_bins);
    let kolmogorov_smirnov = ks_similarity(real, synth);
    let propensity = propensity_similarity(real, synth, config);

    let composite = (column_similarity
        + correlation_similarity
        + jensen_shannon
        + kolmogorov_smirnov
        + propensity)
        / 5.0;
    ResemblanceReport {
        column_similarity: 100.0 * column_similarity,
        correlation_similarity: 100.0 * correlation_similarity,
        jensen_shannon: 100.0 * jensen_shannon,
        kolmogorov_smirnov: 100.0 * kolmogorov_smirnov,
        propensity: 100.0 * propensity,
        composite: 100.0 * composite,
    }
}

/// Score 1 — column similarity. For numeric columns: the Pearson
/// correlation between real and synthetic *quantile profiles* (1 when the
/// marginal shapes coincide). For categorical columns: `1 −` total
/// variation between category frequency vectors.
fn column_similarity(real: &Table, synth: &Table, points: usize) -> f64 {
    let d = real.n_cols();
    (0..d).map(|idx| column_similarity_at(real, synth, idx, points)).sum::<f64>() / d.max(1) as f64
}

fn column_similarity_at(real: &Table, synth: &Table, idx: usize, points: usize) -> f64 {
    match (real.column(idx), synth.column(idx)) {
        (Column::Numeric(a), Column::Numeric(b)) => {
            let qa = quantile_profile(a, points);
            let qb = quantile_profile(b, points);
            // A constant column matching a constant column is perfect.
            let corr = pearson(&qa, &qb);
            if corr == 0.0 && nearly_equal(&qa, &qb) {
                1.0
            } else {
                corr.max(0.0)
            }
        }
        (Column::Categorical(a), Column::Categorical(b)) => {
            let k = cardinality(real, idx);
            1.0 - total_variation(&category_frequencies(a, k), &category_frequencies(b, k))
        }
        _ => unreachable!("schemas matched"),
    }
}

fn nearly_equal(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
}

fn cardinality(table: &Table, col: usize) -> usize {
    match table.schema().columns()[col].kind {
        ColumnKind::Categorical { cardinality } => cardinality as usize,
        ColumnKind::Numeric => 0,
    }
}

/// Score 3 — `1 −` JS distance per column, averaged.
fn js_similarity(real: &Table, synth: &Table, bins: usize) -> f64 {
    let d = real.n_cols();
    (0..d).map(|idx| js_similarity_at(real, synth, idx, bins)).sum::<f64>() / d.max(1) as f64
}

fn js_similarity_at(real: &Table, synth: &Table, idx: usize, bins: usize) -> f64 {
    let dist = match (real.column(idx), synth.column(idx)) {
        (Column::Numeric(a), Column::Numeric(b)) => {
            let lo = a.iter().chain(b).cloned().fold(f64::INFINITY, f64::min);
            let hi = a.iter().chain(b).cloned().fold(f64::NEG_INFINITY, f64::max);
            jensen_shannon_distance(&histogram(a, lo, hi, bins), &histogram(b, lo, hi, bins))
        }
        (Column::Categorical(a), Column::Categorical(b)) => {
            let k = cardinality(real, idx);
            jensen_shannon_distance(&category_frequencies(a, k), &category_frequencies(b, k))
        }
        _ => unreachable!("schemas matched"),
    };
    1.0 - dist
}

/// Score 4 — `1 −` KS statistic per column (total variation for
/// categoricals, its discrete analogue), averaged.
fn ks_similarity(real: &Table, synth: &Table) -> f64 {
    let d = real.n_cols();
    (0..d).map(|idx| ks_similarity_at(real, synth, idx)).sum::<f64>() / d.max(1) as f64
}

fn ks_similarity_at(real: &Table, synth: &Table, idx: usize) -> f64 {
    let stat = match (real.column(idx), synth.column(idx)) {
        (Column::Numeric(a), Column::Numeric(b)) => ks_statistic(a, b),
        (Column::Categorical(a), Column::Categorical(b)) => {
            let k = cardinality(real, idx);
            total_variation(&category_frequencies(a, k), &category_frequencies(b, k))
        }
        _ => unreachable!("schemas matched"),
    };
    1.0 - stat
}

/// Score 5 — propensity mean-absolute similarity: a GBDT discriminator is
/// trained to tell real from synthetic; on a held-out mix,
/// `similarity = 1 − 2 · mean(|p − 0.5|)`. Indistinguishable data keeps
/// every probability at 0.5 → similarity 1.
fn propensity_similarity(real: &Table, synth: &Table, config: &ResemblanceConfig) -> f64 {
    let fr = table_to_features(real, None);
    let fs = table_to_features(synth, None);
    let d = fr.len();
    let n_real = real.n_rows();
    let n_synth = synth.n_rows();

    // Interleave, label, shuffle, split 75/25.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..n_real + n_synth).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let get = |row: usize, col: usize| -> f64 {
        if row < n_real {
            fr[col][row]
        } else {
            fs[col][row - n_real]
        }
    };
    let label = |row: usize| -> u32 { u32::from(row < n_real) };

    let n_train = (order.len() * 3) / 4;
    let mut train_feats: Vec<Vec<f64>> = vec![Vec::with_capacity(n_train); d];
    let mut train_labels = Vec::with_capacity(n_train);
    let mut test_rows = Vec::new();
    for (pos, &row) in order.iter().enumerate() {
        if pos < n_train {
            for (c, feat) in train_feats.iter_mut().enumerate() {
                feat.push(get(row, c));
            }
            train_labels.push(label(row));
        } else {
            test_rows.push(row);
        }
    }
    if train_labels.iter().all(|&l| l == 0) || train_labels.iter().all(|&l| l == 1) {
        return 1.0; // degenerate split: nothing to discriminate
    }
    let model = GbdtBinaryClassifier::fit(&train_feats, &train_labels, &config.propensity_params);
    let mae: f64 = test_rows
        .iter()
        .map(|&row| {
            let feats: Vec<f64> = (0..d).map(|c| get(row, c)).collect();
            (model.predict_proba_row(&feats) - 0.5).abs()
        })
        .sum::<f64>()
        / test_rows.len().max(1) as f64;
    (1.0 - 2.0 * mae).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use silofuse_tabular::profiles;
    use silofuse_tabular::split::train_holdout_split;

    #[test]
    fn identical_data_scores_near_perfect() {
        let t = profiles::loan().generate(512, 0);
        // Compare two halves of the same generation process: same
        // distribution, different samples.
        let (a, b) = train_holdout_split(&t, 0.5, 1);
        let report = resemblance(&a, &b, &ResemblanceConfig::default());
        assert!(report.composite > 85.0, "composite {}", report.composite);
        assert!(report.column_similarity > 85.0);
        assert!(report.propensity > 60.0, "propensity {}", report.propensity);
    }

    #[test]
    fn unrelated_data_scores_low() {
        let real = profiles::loan().generate(256, 0);
        // "Synthetic" data with the right schema but scrambled generator:
        // use an independent-feature copy with different seed and zero
        // correlation.
        let mut gen = profiles::loan().generator(99);
        gen.correlation_strength = 0.0;
        for (_, m) in gen.marginals.iter_mut() {
            if let silofuse_tabular::synthetic::Marginal::Gaussian { mean, .. } = m {
                *mean += 30.0; // shift marginals badly
            }
        }
        let fake = gen.generate(256, 9);
        let report = resemblance(&real, &fake, &ResemblanceConfig::default());
        let good =
            resemblance(&real, &profiles::loan().generate(256, 1), &ResemblanceConfig::default());
        assert!(
            report.composite < good.composite - 5.0,
            "bad {} should score below good {}",
            report.composite,
            good.composite
        );
    }

    #[test]
    fn propensity_catches_shifted_numerics() {
        let real = profiles::diabetes().generate(256, 3);
        let mut cols = real.columns().to_vec();
        for col in &mut cols {
            if let Column::Numeric(v) = col {
                for x in v.iter_mut() {
                    *x += 100.0;
                }
            }
        }
        let shifted = Table::new(real.schema().clone(), cols).unwrap();
        let report = resemblance(&real, &shifted, &ResemblanceConfig::default());
        assert!(report.propensity < 20.0, "propensity {}", report.propensity);
    }

    #[test]
    fn per_column_report_averages_back_to_aggregates() {
        let real = profiles::loan().generate(256, 7);
        let synth = profiles::loan().generate(256, 8);
        let cfg = ResemblanceConfig::default();
        let per_col = per_column_report(&real, &synth, &cfg);
        assert_eq!(per_col.len(), real.n_cols());
        let agg = resemblance(&real, &synth, &cfg);
        let mean_cs =
            per_col.iter().map(|c| c.column_similarity).sum::<f64>() / per_col.len() as f64;
        let mean_js = per_col.iter().map(|c| c.jensen_shannon).sum::<f64>() / per_col.len() as f64;
        let mean_ks =
            per_col.iter().map(|c| c.kolmogorov_smirnov).sum::<f64>() / per_col.len() as f64;
        assert!((mean_cs - agg.column_similarity).abs() < 1e-9);
        assert!((mean_js - agg.jensen_shannon).abs() < 1e-9);
        assert!((mean_ks - agg.kolmogorov_smirnov).abs() < 1e-9);
    }

    #[test]
    fn per_column_report_flags_the_broken_column() {
        // Corrupt exactly one numeric column; its scores must drop below
        // every other column's.
        let real = profiles::diabetes().generate(256, 9);
        let mut cols = real.columns().to_vec();
        let bad = real.schema().numeric_indices()[0];
        if let Column::Numeric(v) = &mut cols[bad] {
            for x in v.iter_mut() {
                *x = *x * 10.0 + 500.0;
            }
        }
        let corrupted = Table::new(real.schema().clone(), cols).unwrap();
        let report = per_column_report(&real, &corrupted, &ResemblanceConfig::default());
        let bad_score = report[bad].kolmogorov_smirnov;
        for (i, c) in report.iter().enumerate() {
            if i != bad {
                assert!(
                    c.kolmogorov_smirnov > bad_score,
                    "column {i} ({}) scored {} <= corrupted {}",
                    c.name,
                    c.kolmogorov_smirnov,
                    bad_score
                );
            }
        }
    }

    #[test]
    fn scores_are_within_0_100() {
        let real = profiles::diabetes().generate(128, 4);
        let synth = profiles::diabetes().generate(128, 5);
        let r = resemblance(&real, &synth, &ResemblanceConfig::default());
        for v in [
            r.column_similarity,
            r.correlation_similarity,
            r.jensen_shannon,
            r.kolmogorov_smirnov,
            r.propensity,
            r.composite,
        ] {
            assert!((0.0..=100.0).contains(&v), "{r:?}");
        }
    }
}
