//! Statistical primitives shared by the benchmark metrics.

/// Pearson correlation coefficient of two equal-length samples.
/// Returns 0 when either sample is (numerically) constant.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson needs equal lengths");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (x, y) in a.iter().zip(b) {
        num += (x - ma) * (y - mb);
        da += (x - ma) * (x - ma);
        db += (y - mb) * (y - mb);
    }
    let denom = (da * db).sqrt();
    if denom < 1e-12 {
        0.0
    } else {
        (num / denom).clamp(-1.0, 1.0)
    }
}

/// Shannon entropy (nats) of a discrete sample of codes.
fn entropy(codes: &[u32], cardinality: usize) -> f64 {
    let mut counts = vec![0usize; cardinality];
    for &c in codes {
        counts[c as usize] += 1;
    }
    let n = codes.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Theil's uncertainty coefficient `U(x | y)`: the fraction of `x`'s entropy
/// explained by knowing `y`. In `[0, 1]`; 1 when `y` determines `x`.
pub fn theils_u(x: &[u32], y: &[u32], card_x: usize, card_y: usize) -> f64 {
    assert_eq!(x.len(), y.len(), "theils_u needs equal lengths");
    if x.is_empty() {
        return 0.0;
    }
    let h_x = entropy(x, card_x);
    if h_x < 1e-12 {
        return 1.0; // constant x is fully "explained"
    }
    // Conditional entropy H(x | y).
    let n = x.len() as f64;
    let mut joint = vec![0usize; card_x * card_y];
    let mut y_counts = vec![0usize; card_y];
    for (&xi, &yi) in x.iter().zip(y) {
        joint[xi as usize * card_y + yi as usize] += 1;
        y_counts[yi as usize] += 1;
    }
    let mut h_x_given_y = 0.0;
    for yi in 0..card_y {
        if y_counts[yi] == 0 {
            continue;
        }
        let p_y = y_counts[yi] as f64 / n;
        let mut h = 0.0;
        for xi in 0..card_x {
            let c = joint[xi * card_y + yi];
            if c > 0 {
                let p = c as f64 / y_counts[yi] as f64;
                h -= p * p.ln();
            }
        }
        h_x_given_y += p_y * h;
    }
    ((h_x - h_x_given_y) / h_x).clamp(0.0, 1.0)
}

/// Correlation ratio `η` between a categorical grouping and a numeric
/// variable, in `[0, 1]`.
pub fn correlation_ratio(groups: &[u32], values: &[f64], cardinality: usize) -> f64 {
    assert_eq!(groups.len(), values.len(), "correlation_ratio needs equal lengths");
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let mut sums = vec![0.0f64; cardinality];
    let mut counts = vec![0usize; cardinality];
    for (&g, &v) in groups.iter().zip(values) {
        sums[g as usize] += v;
        counts[g as usize] += 1;
    }
    let mut between = 0.0;
    for k in 0..cardinality {
        if counts[k] > 0 {
            let gm = sums[k] / counts[k] as f64;
            between += counts[k] as f64 * (gm - mean) * (gm - mean);
        }
    }
    let total: f64 = values.iter().map(|v| (v - mean) * (v - mean)).sum();
    if total < 1e-12 {
        0.0
    } else {
        (between / total).clamp(0.0, 1.0).sqrt()
    }
}

/// Normalised histogram of a numeric sample over `bins` equal-width bins
/// spanning `[lo, hi]`.
pub fn histogram(values: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<f64> {
    assert!(bins >= 1, "need at least one bin");
    let mut h = vec![0.0f64; bins];
    if values.is_empty() {
        return h;
    }
    let width = (hi - lo).max(1e-12);
    for &v in values {
        let idx = (((v - lo) / width) * bins as f64).floor() as isize;
        let idx = idx.clamp(0, bins as isize - 1) as usize;
        h[idx] += 1.0;
    }
    let n = values.len() as f64;
    for v in &mut h {
        *v /= n;
    }
    h
}

/// Jensen–Shannon distance (square root of the divergence, log base 2, so
/// the result lies in `[0, 1]`) between two discrete distributions.
pub fn jensen_shannon_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have equal support");
    let mut div = 0.0f64;
    for (&pi, &qi) in p.iter().zip(q) {
        let mi = 0.5 * (pi + qi);
        if pi > 0.0 {
            div += 0.5 * pi * (pi / mi).log2();
        }
        if qi > 0.0 {
            div += 0.5 * qi * (qi / mi).log2();
        }
    }
    div.max(0.0).sqrt().min(1.0)
}

/// Two-sample Kolmogorov–Smirnov statistic (max CDF gap) in `[0, 1]`.
///
/// NaN values are treated as missing and ignored; a sample that is empty
/// (or all-NaN) is maximally distant. They must not reach the merge below:
/// `NaN <= x` is always false, so a NaN in both samples would stop either
/// index from advancing and loop forever.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    let mut sa: Vec<f64> = a.iter().copied().filter(|v| !v.is_nan()).collect();
    let mut sb: Vec<f64> = b.iter().copied().filter(|v| !v.is_nan()).collect();
    if sa.is_empty() || sb.is_empty() {
        return 1.0;
    }
    sa.sort_by(|x, y| x.total_cmp(y));
    sb.sort_by(|x, y| x.total_cmp(y));
    let (mut i, mut j) = (0usize, 0usize);
    let mut max_gap = 0.0f64;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        let gap = (i as f64 / sa.len() as f64 - j as f64 / sb.len() as f64).abs();
        max_gap = max_gap.max(gap);
    }
    max_gap
}

/// Total-variation distance between two category frequency vectors.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have equal support");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Empirical category frequencies of a code sample.
pub fn category_frequencies(codes: &[u32], cardinality: usize) -> Vec<f64> {
    let mut f = vec![0.0f64; cardinality];
    for &c in codes {
        f[c as usize] += 1.0;
    }
    let n = codes.len().max(1) as f64;
    for v in &mut f {
        *v /= n;
    }
    f
}

/// Linear interpolation into an ascending-sorted, non-empty sample at
/// fractional position `pos`. The position is clamped to the index range
/// and the upper neighbour clamped to the last element, so a `pos` landing
/// exactly on — or a float ulp past — the final index can never index out
/// of bounds (the off-by-one hazard of the unclamped `idx + 1` form).
fn lerp_sorted(sorted: &[f64], pos: f64) -> f64 {
    let last = sorted.len() - 1;
    let pos = pos.clamp(0.0, last as f64);
    let idx = (pos.floor() as usize).min(last);
    let upper = (idx + 1).min(last);
    let frac = pos - idx as f64;
    sorted[idx] * (1.0 - frac) + sorted[upper] * frac
}

/// Evenly spaced empirical quantiles (inclusive of min and max).
pub fn quantile_profile(values: &[f64], points: usize) -> Vec<f64> {
    assert!(points >= 2, "need at least two quantile points");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    if sorted.is_empty() {
        return vec![0.0; points];
    }
    (0..points)
        .map(|k| {
            let pos = k as f64 / (points - 1) as f64 * (sorted.len() - 1) as f64;
            lerp_sorted(&sorted, pos)
        })
        .collect()
}

/// Macro-averaged F1 score over `n_classes`.
pub fn macro_f1(truth: &[u32], pred: &[u32], n_classes: u32) -> f64 {
    assert_eq!(truth.len(), pred.len(), "macro_f1 needs equal lengths");
    let k = n_classes as usize;
    let mut tp = vec![0usize; k];
    let mut fp = vec![0usize; k];
    let mut false_n = vec![0usize; k];
    for (&t, &p) in truth.iter().zip(pred) {
        if t == p {
            tp[t as usize] += 1;
        } else {
            fp[p as usize] += 1;
            false_n[t as usize] += 1;
        }
    }
    let mut f1_sum = 0.0;
    let mut present = 0usize;
    for c in 0..k {
        let support = tp[c] + false_n[c];
        if support == 0 && fp[c] == 0 {
            continue; // class absent from truth and predictions
        }
        present += 1;
        let precision = tp[c] as f64 / (tp[c] + fp[c]).max(1) as f64;
        let recall = tp[c] as f64 / (tp[c] + false_n[c]).max(1) as f64;
        if precision + recall > 0.0 {
            f1_sum += 2.0 * precision * recall / (precision + recall);
        }
    }
    if present == 0 {
        0.0
    } else {
        f1_sum / present as f64
    }
}

/// D² absolute-error score: `1 - Σ|y - ŷ| / Σ|y - median(y)|` (the
/// absolute-error analogue of R², as in scikit-learn).
pub fn d2_absolute_error(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "d2 needs equal lengths");
    if truth.is_empty() {
        return 0.0;
    }
    let mut sorted = truth.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let num: f64 = truth.iter().zip(pred).map(|(t, p)| (t - p).abs()).sum();
    let den: f64 = truth.iter().map(|t| (t - median).abs()).sum();
    if den < 1e-12 {
        if num < 1e-12 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - num / den
    }
}

/// `p`-th percentile (0–100) of a sample, linear interpolation.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    lerp_sorted(&sorted, p / 100.0 * (sorted.len() - 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_and_anti() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-9);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-9);
        assert_eq!(pearson(&a, &[5.0; 4]), 0.0);
    }

    #[test]
    fn theils_u_determined_and_independent() {
        // y determines x exactly.
        let y = [0u32, 1, 2, 0, 1, 2, 0, 1, 2];
        let x = [0u32, 1, 0, 0, 1, 0, 0, 1, 0];
        assert!(theils_u(&x, &y, 2, 3) > 0.99);
        // Independent-ish.
        let x2 = [0u32, 1, 0, 1, 0, 1, 0, 1, 0];
        let y2 = [0u32, 0, 0, 0, 1, 1, 1, 1, 1];
        let u = theils_u(&x2, &y2, 2, 2);
        assert!(u < 0.2, "u = {u}");
    }

    #[test]
    fn theils_u_is_asymmetric() {
        // x = f(y) but y has more classes than x: U(x|y)=1, U(y|x)<1.
        let y = [0u32, 1, 2, 3, 0, 1, 2, 3];
        let x: Vec<u32> = y.iter().map(|&v| v % 2).collect();
        assert!(theils_u(&x, &y, 2, 4) > 0.99);
        assert!(theils_u(&y, &x, 4, 2) < 0.99);
    }

    #[test]
    fn correlation_ratio_detects_group_effect() {
        let groups = [0u32, 0, 0, 1, 1, 1];
        let strong = [1.0, 1.1, 0.9, 5.0, 5.1, 4.9];
        assert!(correlation_ratio(&groups, &strong, 2) > 0.95);
        let weak = [1.0, 5.0, 3.0, 1.0, 5.0, 3.0];
        assert!(correlation_ratio(&groups, &weak, 2) < 0.1);
    }

    #[test]
    fn js_distance_bounds() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((jensen_shannon_distance(&p, &q) - 1.0).abs() < 1e-9);
        assert!(jensen_shannon_distance(&p, &p) < 1e-9);
    }

    #[test]
    fn ks_statistic_identical_and_disjoint() {
        let a = [1.0, 2.0, 3.0];
        assert!(ks_statistic(&a, &a) < 1e-9);
        let b = [10.0, 11.0, 12.0];
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ks_statistic_ignores_nans_and_terminates() {
        // NaNs in *both* samples used to be the worst case: the sorted
        // merge compared against NaN and neither index advanced.
        let a = [1.0, f64::NAN, 2.0, 3.0, f64::NAN];
        let b = [f64::NAN, 1.0, 2.0, 3.0];
        let ks = ks_statistic(&a, &b);
        assert!(ks.is_finite() && ks < 1e-9, "NaNs are missing values, ks = {ks}");
        // All-NaN collapses to the empty-sample convention.
        assert!((ks_statistic(&[f64::NAN, f64::NAN], &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nan_bearing_columns_do_not_panic_summary_stats() {
        let vals = [1.0, f64::NAN, 3.0, 2.0];
        let q = quantile_profile(&vals, 3);
        assert_eq!(q.len(), 3);
        let _ = histogram(&vals, 0.0, 4.0, 4);
    }

    #[test]
    fn ks_statistic_partial_overlap() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [3.0, 4.0, 5.0, 6.0];
        let ks = ks_statistic(&a, &b);
        assert!(ks > 0.3 && ks < 0.8, "ks = {ks}");
    }

    #[test]
    fn histogram_sums_to_one() {
        let h = histogram(&[0.0, 0.5, 1.0, 1.5, 2.0], 0.0, 2.0, 4);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_profile_monotone() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        let q = quantile_profile(&v, 5);
        assert_eq!(q[0], 1.0);
        assert_eq!(q[4], 5.0);
        assert!(q.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn macro_f1_perfect_and_worst() {
        let t = [0u32, 1, 2, 0, 1, 2];
        assert!((macro_f1(&t, &t, 3) - 1.0).abs() < 1e-9);
        let wrong = [1u32, 2, 0, 1, 2, 0];
        assert!(macro_f1(&t, &wrong, 3) < 1e-9);
    }

    #[test]
    fn macro_f1_ignores_absent_classes() {
        let t = [0u32, 0, 1, 1];
        let p = [0u32, 0, 1, 1];
        // Class 2 absent everywhere; score should still be 1.
        assert!((macro_f1(&t, &p, 3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn d2_score_reference_points() {
        let y = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((d2_absolute_error(&y, &y) - 1.0).abs() < 1e-9);
        // Predicting the median everywhere scores exactly 0.
        let med = [3.0; 5];
        assert!(d2_absolute_error(&y, &med).abs() < 1e-9);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&v, 0.0) - 1.0).abs() < 1e-9);
        assert!((percentile(&v, 100.0) - 4.0).abs() < 1e-9);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn total_variation_bounds() {
        assert!((total_variation(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-9);
        assert!(total_variation(&[0.5, 0.5], &[0.5, 0.5]) < 1e-9);
    }

    #[test]
    fn quantile_boundaries_single_element() {
        // n = 1: every quantile point and percentile is the lone value; the
        // upper-neighbour clamp must keep idx+1 in bounds.
        let v = [7.5];
        assert_eq!(quantile_profile(&v, 5), vec![7.5; 5]);
        for p in [0.0, 37.5, 50.0, 99.9, 100.0] {
            assert_eq!(percentile(&v, p), 7.5, "p={p}");
        }
    }

    #[test]
    fn quantile_boundaries_two_elements() {
        // n = 2: the last quantile point lands exactly on the final index.
        let v = [1.0, 3.0];
        let q = quantile_profile(&v, 3);
        assert!((q[0] - 1.0).abs() < 1e-12);
        assert!((q[1] - 2.0).abs() < 1e-12);
        assert!((q[2] - 3.0).abs() < 1e-12);
        assert_eq!(percentile(&v, 100.0), 3.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
    }

    #[test]
    fn quantile_position_exactly_on_last_index() {
        // pos == last index (and a hair past it via p > 100-eps rounding):
        // must return the max, never read past the slice.
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 100.0), 5.0);
        let q = quantile_profile(&v, 5);
        assert_eq!(*q.last().unwrap(), 5.0);
        // A position an ulp beyond the last index still clamps safely.
        let p = 100.0 * (1.0 + f64::EPSILON);
        assert!((0.0..=100.0).contains(&p.min(100.0)));
        assert_eq!(percentile(&v, p.min(100.0)), 5.0);
    }
}
