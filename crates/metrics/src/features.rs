//! Table → GBDT feature conversion.

use silofuse_tabular::table::{Column, Table};
use silofuse_trees::Features;

/// Converts a table into column-major GBDT features: numeric columns pass
/// through, categorical columns become their integer codes (label encoding,
/// which tree splits handle natively). `exclude` drops one column (the
/// prediction target).
pub fn table_to_features(table: &Table, exclude: Option<usize>) -> Features {
    table
        .columns()
        .iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != exclude)
        .map(|(_, col)| match col {
            Column::Numeric(v) => v.clone(),
            Column::Categorical(codes) => codes.iter().map(|&c| f64::from(c)).collect(),
        })
        .collect()
}

/// Extracts one column as regression targets.
///
/// # Panics
/// Panics if the column is categorical.
pub fn numeric_targets(table: &Table, column: usize) -> Vec<f64> {
    table.column(column).as_numeric().expect("numeric target column").to_vec()
}

/// Extracts one column as class labels.
///
/// # Panics
/// Panics if the column is numeric.
pub fn categorical_targets(table: &Table, column: usize) -> Vec<u32> {
    table.column(column).as_categorical().expect("categorical target column").to_vec()
}

/// One mixed-type row as a dense `f64` vector (codes for categoricals),
/// excluding `exclude` if given.
pub fn row_features(table: &Table, row: usize, exclude: Option<usize>) -> Vec<f64> {
    table
        .columns()
        .iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != exclude)
        .map(|(_, col)| match col {
            Column::Numeric(v) => v[row],
            Column::Categorical(codes) => f64::from(codes[row]),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use silofuse_tabular::profiles;

    #[test]
    fn features_have_one_column_per_kept_schema_column() {
        let t = profiles::loan().generate(32, 0);
        let f = table_to_features(&t, None);
        assert_eq!(f.len(), t.n_cols());
        assert!(f.iter().all(|c| c.len() == 32));
        let f2 = table_to_features(&t, Some(0));
        assert_eq!(f2.len(), t.n_cols() - 1);
    }

    #[test]
    fn row_features_match_columns() {
        let t = profiles::loan().generate(8, 1);
        let f = table_to_features(&t, None);
        let row = row_features(&t, 3, None);
        for (j, col) in f.iter().enumerate() {
            assert_eq!(row[j], col[3]);
        }
    }
}
