//! Property-based invariants of the benchmark metrics: every score must be
//! bounded, symmetric where claimed, and maximal on identical inputs —
//! regardless of the table contents.

use proptest::prelude::*;
use silofuse_metrics::correlation::{association_matrix, correlation_difference};
use silofuse_metrics::stats::{
    d2_absolute_error, jensen_shannon_distance, ks_statistic, macro_f1, pearson,
};
use silofuse_metrics::{privacy, resemblance, PrivacyConfig, ResemblanceConfig};
use silofuse_tabular::schema::{ColumnMeta, Schema};
use silofuse_tabular::table::{Column, Table};
use silofuse_trees::BoostParams;

fn arb_table_pair() -> impl Strategy<Value = (Table, Table)> {
    (4usize..30, 2usize..6, 0u64..100).prop_map(|(rows, cols, seed)| {
        let build = |offset: u64| {
            let mut metas = Vec::new();
            let mut columns = Vec::new();
            for i in 0..cols {
                if i % 2 == 0 {
                    metas.push(ColumnMeta::numeric(format!("n{i}")));
                    columns.push(Column::Numeric(
                        (0..rows)
                            .map(|r| {
                                ((r as f64 + seed as f64 + offset as f64) * 0.71 + i as f64).sin()
                                    * 5.0
                            })
                            .collect(),
                    ));
                } else {
                    let card = 3u32;
                    metas.push(ColumnMeta::categorical(format!("c{i}"), card));
                    columns.push(Column::Categorical(
                        (0..rows)
                            .map(|r| ((r as u64 + seed + offset * 7) % u64::from(card)) as u32)
                            .collect(),
                    ));
                }
            }
            Table::new(Schema::new(metas), columns).unwrap()
        };
        (build(0), build(13))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All resemblance components stay in [0, 100]; identical inputs score
    /// the distribution components at (or extremely near) 100.
    #[test]
    fn resemblance_bounds((real, synth) in arb_table_pair()) {
        let cfg = ResemblanceConfig {
            propensity_params: BoostParams { n_trees: 5, ..Default::default() },
            ..Default::default()
        };
        let r = resemblance(&real, &synth, &cfg);
        for v in [r.column_similarity, r.correlation_similarity, r.jensen_shannon,
                  r.kolmogorov_smirnov, r.propensity, r.composite] {
            prop_assert!((0.0..=100.0).contains(&v), "{r:?}");
        }
        let same = resemblance(&real, &real, &cfg);
        prop_assert!(same.column_similarity > 99.0);
        prop_assert!(same.jensen_shannon > 99.0);
        prop_assert!(same.kolmogorov_smirnov > 99.0);
        prop_assert!(same.correlation_similarity > 99.0);
    }

    /// Privacy scores are bounded for arbitrary table pairs.
    #[test]
    fn privacy_bounds((real, synth) in arb_table_pair()) {
        let cfg = PrivacyConfig { attempts: 20, ..Default::default() };
        let p = privacy(&real, &synth, &cfg);
        for v in [p.singling_out, p.linkability, p.attribute_inference, p.composite] {
            prop_assert!((0.0..=100.0).contains(&v), "{p:?}");
        }
    }

    /// Association matrices are symmetric with entries in [0, 1]; the
    /// difference of a table with itself is identically zero.
    #[test]
    fn association_matrix_invariants((real, _) in arb_table_pair()) {
        let d = real.n_cols();
        let m = association_matrix(&real);
        for i in 0..d {
            for j in 0..d {
                prop_assert!((0.0..=1.0).contains(&m[i * d + j]));
                prop_assert!((m[i * d + j] - m[j * d + i]).abs() < 1e-12);
            }
        }
        prop_assert_eq!(correlation_difference(&real, &real).mean_abs_diff, 0.0);
    }

    /// Scalar statistics respect their ranges on arbitrary slices.
    #[test]
    fn scalar_stat_ranges(a in proptest::collection::vec(-50.0f64..50.0, 2..40),
                          b in proptest::collection::vec(-50.0f64..50.0, 2..40)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        prop_assert!((-1.0..=1.0).contains(&pearson(a, b)));
        prop_assert!((0.0..=1.0).contains(&ks_statistic(a, b)));
        let p = [0.2, 0.3, 0.5];
        let q = [0.5, 0.25, 0.25];
        prop_assert!((0.0..=1.0).contains(&jensen_shannon_distance(&p, &q)));
        prop_assert!(d2_absolute_error(a, a) >= 1.0 - 1e-12);
    }

    /// Macro-F1 is bounded and equals 1 exactly on perfect predictions.
    #[test]
    fn macro_f1_bounds(labels in proptest::collection::vec(0u32..4, 4..40)) {
        prop_assert!((macro_f1(&labels, &labels, 4) - 1.0).abs() < 1e-12);
        let shifted: Vec<u32> = labels.iter().map(|&v| (v + 1) % 4).collect();
        let f1 = macro_f1(&labels, &shifted, 4);
        prop_assert!((0.0..=1.0).contains(&f1));
    }
}
