//! Live metrics exposition in Prometheus text format.
//!
//! [`render_prometheus`] snapshots every scope of the installed hub into
//! one scrape-ready document (each sample labelled with its actor via
//! `scope="..."`), and [`Flusher`] writes that snapshot to a file on a
//! fixed interval with an atomic tmp + rename — so a long-running
//! process exposes current metrics without waiting for shutdown, and a
//! scraper never reads a torn file. This is the hook a future
//! `silofuse-serve` HTTP endpoint will serve from.

use crate::metrics::{bucket_upper_bound, Histogram, BUCKETS};
use crate::scope::TelemetryHub;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Renders every scope of `hub` as one Prometheus text-format document.
///
/// Metric names are prefixed `silofuse_` and sanitized (dots become
/// underscores); counters get the conventional `_total` suffix;
/// histograms emit cumulative `_bucket{le=...}` series over the
/// non-empty log₂ buckets plus `_sum`/`_count`, and their NaN tallies
/// surface as `<name>_nan_total`. Samples from different actors share
/// one `# TYPE` header and differ only in the `scope` label.
pub fn render_prometheus(hub: &TelemetryHub) -> String {
    let mut counters: BTreeMap<String, Vec<(String, u64)>> = BTreeMap::new();
    let mut gauges: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
    let mut histograms: BTreeMap<String, Vec<(String, Histogram)>> = BTreeMap::new();
    for scope in hub.scopes() {
        let actor = scope.actor().to_string();
        let metrics = scope.metrics();
        for (name, value) in metrics.counters() {
            counters.entry(metric_name(&name, "_total")).or_default().push((actor.clone(), value));
        }
        for (name, value) in metrics.gauges() {
            gauges.entry(metric_name(&name, "")).or_default().push((actor.clone(), value));
        }
        for (name, hist) in metrics.histograms() {
            let nan = hist.nan_count();
            if nan > 0 {
                counters
                    .entry(metric_name(&name, "_nan_total"))
                    .or_default()
                    .push((actor.clone(), nan));
            }
            histograms.entry(metric_name(&name, "")).or_default().push((actor.clone(), hist));
        }
        // The Lamport clock doubles as a liveness/progress gauge.
        let lamport = scope.lamport();
        if lamport > 0 {
            gauges
                .entry("silofuse_lamport_clock".to_string())
                .or_default()
                .push((actor.clone(), lamport as f64));
        }
    }
    let mut out = String::new();
    for (name, samples) in &counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        for (scope, value) in samples {
            let _ = writeln!(out, "{name}{{scope={}}} {value}", label_value(scope));
        }
    }
    for (name, samples) in &gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        for (scope, value) in samples {
            let _ = writeln!(out, "{name}{{scope={}}} {}", label_value(scope), prom_num(*value));
        }
    }
    for (name, samples) in &histograms {
        let _ = writeln!(out, "# TYPE {name} histogram");
        for (scope, hist) in samples {
            let scope = label_value(scope);
            let mut cumulative = 0u64;
            for (i, count) in hist.bucket_counts().into_iter().enumerate() {
                cumulative += count;
                if count > 0 && i < BUCKETS - 1 {
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{scope={scope},le=\"{}\"}} {cumulative}",
                        prom_num(bucket_upper_bound(i))
                    );
                }
            }
            let _ = writeln!(out, "{name}_bucket{{scope={scope},le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(out, "{name}_sum{{scope={scope}}} {}", prom_num(hist.sum()));
            let _ = writeln!(out, "{name}_count{{scope={scope}}} {}", hist.count());
        }
    }
    out
}

/// Writes the current hub snapshot to `path` via tmp + rename. Returns
/// `Ok(false)` without touching the file when no hub is installed.
pub fn write_snapshot(path: &Path) -> std::io::Result<bool> {
    let Some(hub) = crate::hub() else {
        return Ok(false);
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, render_prometheus(&hub))?;
    std::fs::rename(&tmp, path)?;
    Ok(true)
}

fn metric_name(name: &str, suffix: &str) -> String {
    let mut out = String::with_capacity(name.len() + 10 + suffix.len());
    out.push_str("silofuse_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out.push_str(suffix);
    out
}

// Label values come from scope names, which since the serve layer can
// embed caller-chosen tenant names — treat them as hostile. Quote, slash,
// and newline get the Prometheus escapes; every other ASCII control
// character (\r, \0, tab, ANSI ESC, ...) is replaced outright so a
// malicious name can neither smuggle extra exposition lines nor corrupt
// terminals tailing the snapshot.
fn label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if c.is_control() => out.push('_'),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// Prometheus renders f64 with full precision; non-finite values have
// spellings of their own (+Inf/-Inf/NaN), unlike JSON.
fn prom_num(value: f64) -> String {
    if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if value.is_nan() {
        "NaN".to_string()
    } else {
        format!("{value}")
    }
}

struct FlusherShared {
    stopped: Mutex<bool>,
    wake: Condvar,
}

/// Background thread flushing hub snapshots to a file on an interval.
///
/// The flusher re-resolves the global hub on every tick, so it survives
/// `shutdown`/`init` cycles (it simply skips ticks while no hub is
/// installed) and performs one final flush when stopped, making the
/// on-disk snapshot consistent with shutdown-time state.
pub struct Flusher {
    path: PathBuf,
    shared: Arc<FlusherShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Flusher {
    /// Starts flushing to `path` every `interval`.
    pub fn start(path: impl Into<PathBuf>, interval: Duration) -> Self {
        let path = path.into();
        let shared = Arc::new(FlusherShared { stopped: Mutex::new(false), wake: Condvar::new() });
        let thread = {
            let path = path.clone();
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let mut stopped = shared.stopped.lock().unwrap_or_else(|e| e.into_inner());
                while !*stopped {
                    let (guard, _) = shared
                        .wake
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(|e| e.into_inner());
                    stopped = guard;
                    if *stopped {
                        break;
                    }
                    drop(stopped);
                    let _ = write_snapshot(&path);
                    stopped = shared.stopped.lock().unwrap_or_else(|e| e.into_inner());
                }
            })
        };
        Self { path, shared, thread: Some(thread) }
    }

    /// Where snapshots are written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stops the background thread and writes one final snapshot.
    pub fn stop(mut self) -> std::io::Result<bool> {
        self.halt();
        write_snapshot(&self.path)
    }

    fn halt(&mut self) {
        *self.shared.stopped.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.shared.wake.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::DEFAULT_ACTOR;

    #[test]
    fn renders_scope_labelled_families_with_shared_type_headers() {
        let hub = TelemetryHub::new("prom", DEFAULT_ACTOR);
        hub.default_scope().metrics().counter("fault.drop").add(3);
        hub.scope("silo0").metrics().counter("fault.drop").add(5);
        hub.scope("silo0").metrics().gauge("train.loss").set(0.25);
        let doc = render_prometheus(&hub);
        assert_eq!(doc.matches("# TYPE silofuse_fault_drop_total counter").count(), 1);
        assert!(doc.contains("silofuse_fault_drop_total{scope=\"main\"} 3"));
        assert!(doc.contains("silofuse_fault_drop_total{scope=\"silo0\"} 5"));
        assert!(doc.contains("silofuse_train_loss{scope=\"silo0\"} 0.25"));
    }

    #[test]
    fn histograms_emit_cumulative_buckets_sum_count_and_nan_tally() {
        let hub = TelemetryHub::new("prom-hist", DEFAULT_ACTOR);
        let h = hub.default_scope().metrics().histogram("comm.bytes.Ack.up");
        h.observe(1.0);
        h.observe(1.0);
        h.observe(1024.0);
        h.observe(f64::NAN);
        let doc = render_prometheus(&hub);
        assert!(doc.contains("# TYPE silofuse_comm_bytes_Ack_up histogram"));
        assert!(doc.contains("silofuse_comm_bytes_Ack_up_bucket{scope=\"main\",le=\"1\"} 2"));
        assert!(doc.contains("silofuse_comm_bytes_Ack_up_bucket{scope=\"main\",le=\"1024\"} 3"));
        assert!(doc.contains("silofuse_comm_bytes_Ack_up_bucket{scope=\"main\",le=\"+Inf\"} 3"));
        assert!(doc.contains("silofuse_comm_bytes_Ack_up_sum{scope=\"main\"} 1026"));
        assert!(doc.contains("silofuse_comm_bytes_Ack_up_count{scope=\"main\"} 3"));
        assert!(doc.contains("silofuse_comm_bytes_Ack_up_nan_total{scope=\"main\"} 1"));
    }

    #[test]
    fn malicious_tenant_scope_names_cannot_break_exposition() {
        // A serve tenant gets to pick its own name; this one tries to
        // inject a fake metric line via \n and \r, smuggle a quote, and
        // slip ANSI/control bytes into the snapshot.
        let hostile = "evil\"} 999\nfake_metric{scope=\"x\r\t\0\x1b[31m";
        let hub = TelemetryHub::new("prom-hostile", DEFAULT_ACTOR);
        hub.scope(hostile).metrics().counter("serve.rows").add(1);
        let doc = render_prometheus(&hub);
        // The embedded newline must not mint a line of its own: the fake
        // family may appear only escaped inside the label, never at the
        // start of an exposition line.
        assert!(
            !doc.lines().any(|line| line.starts_with("fake_metric")),
            "injected line leaked:\n{doc}"
        );
        assert!(doc.contains(
            "silofuse_serve_rows_total{scope=\"evil\\\"} 999\\nfake_metric{scope=\\\"x____[31m\"} 1"
        ), "unexpected rendering:\n{doc}");
        // No raw control bytes survive anywhere in the document.
        assert!(doc.chars().all(|c| c == '\n' || !c.is_control()), "control byte leaked");
    }

    #[test]
    fn prom_num_spells_non_finite_values() {
        assert_eq!(prom_num(f64::INFINITY), "+Inf");
        assert_eq!(prom_num(f64::NEG_INFINITY), "-Inf");
        assert_eq!(prom_num(f64::NAN), "NaN");
        assert_eq!(prom_num(0.5), "0.5");
    }
}
