//! Counters, gauges, and fixed-bucket histograms behind cheap handles.
//!
//! All handles are `Arc`-backed and lock-free on the hot path: counters
//! and gauges are single atomics, histograms use one atomic per log₂
//! bucket plus a CAS loop for the exact running sum. The [`Registry`]
//! only takes a lock to create or look up a handle by name.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic counter handle. Clone freely; clones share the same cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins `f64` gauge handle (stored as bits in one atomic).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 before the first `set`).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets.
pub const BUCKETS: usize = 64;

// Bucket `i` covers values in `(upper_bound(i-1), upper_bound(i)]` with
// `upper_bound(i) = 2^(i + MIN_EXP)`; bucket 0 additionally absorbs
// everything at or below its bound, the last bucket everything above.
const MIN_EXP: i32 = -20;

/// Upper bound of bucket `i`: `2^(i - 20)`, from ~1e-6 up to ~4.4e12.
pub fn bucket_upper_bound(i: usize) -> f64 {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    (2.0f64).powi(i as i32 + MIN_EXP)
}

// `None` means the value is NaN and must not be bucketed at all; `+Inf`
// clamps to the last bucket, `-Inf` (like zero and negatives) to the
// first, so infinities never drag quantiles toward the wrong edge.
fn bucket_index(value: f64) -> Option<usize> {
    if value.is_nan() {
        return None;
    }
    if value == f64::INFINITY {
        return Some(BUCKETS - 1);
    }
    if value <= bucket_upper_bound(0) {
        return Some(0);
    }
    let idx = value.log2().ceil() as i64 - i64::from(MIN_EXP);
    Some(idx.clamp(0, BUCKETS as i64 - 1) as usize)
}

/// Fixed-bucket log₂ histogram handle with exact count/sum and
/// bucket-resolution quantiles.
#[derive(Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_bits: AtomicU64,
    nan: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
            nan: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation. NaN observations are tallied separately
    /// (see [`Histogram::nan_count`]) and excluded from count, sum, and
    /// buckets — a single poisoned value must not corrupt quantiles.
    pub fn observe(&self, value: f64) {
        let inner = &*self.0;
        let Some(index) = bucket_index(value) else {
            inner.nan.fetch_add(1, Ordering::Relaxed);
            return;
        };
        inner.buckets[index].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut current = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Number of non-NaN observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Number of NaN observations rejected by [`Histogram::observe`].
    pub fn nan_count(&self) -> u64 {
        self.0.nan.load(Ordering::Relaxed)
    }

    /// Exact sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) at bucket resolution: the upper
    /// bound of the bucket containing the rank-`⌈q·n⌉` observation, i.e.
    /// correct to within a factor of 2. Returns 0.0 when empty.
    ///
    /// `count` and the bucket cells are separate relaxed atomics, so the
    /// rank is derived from a snapshot of the buckets themselves — never
    /// from the live counter, which a concurrent writer may have bumped
    /// before its bucket increment landed (the rank would then overshoot
    /// the cumulative sum and silently fall through to the max bucket).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let snapshot: Vec<u64> = self.bucket_counts();
        let n: u64 = snapshot.iter().sum();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cumulative = 0u64;
        for (i, &count) in snapshot.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }

    /// Per-bucket observation counts.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("p50", &self.quantile(0.5))
            .finish()
    }
}

/// Named metric handles, created on first use.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<HashMap<String, Counter>>,
    gauges: Mutex<HashMap<String, Gauge>>,
    histograms: Mutex<HashMap<String, Histogram>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created zeroed if absent.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created zeroed if absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created empty if absent.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string()).or_default().clone()
    }

    /// All counters as `(name, value)`, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<_> = map.iter().map(|(k, v)| (k.clone(), v.get())).collect();
        out.sort();
        out
    }

    /// All gauges as `(name, value)`, sorted by name.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        let map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<_> = map.iter().map(|(k, v)| (k.clone(), v.get())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// All histograms as `(name, handle)`, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        let map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<_> = map.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}
