//! Hand-rolled JSONL export of a telemetry run.
//!
//! One JSON object per line, written to
//! `target/experiments/telemetry/<run>.jsonl` (relative to the working
//! directory, matching where the bench harness puts its reports):
//!
//! ```text
//! {"type":"run","run":"table3","unix_ms":1754480000000}
//! {"type":"phase","phase":"encode","seq":0}
//! {"type":"train_epoch","model":"autoencoder","epoch":8,"loss":0.41,"lr":0.001,"rows":4096}
//! {"type":"comm","dir":"up","kind":"LatentUpload","bytes":16396}
//! {"type":"span","path":"fit/latent-train","calls":1,"total_s":1.24,"mean_s":1.24,"max_s":1.24}
//! {"type":"counter","name":"nn.adam.steps","value":1200}
//! {"type":"gauge","name":"train.loss.final","value":0.31}
//! {"type":"histogram","name":"comm.bytes.LatentUpload.up","count":4,"sum":65584,"p50":32768,"p90":32768,"p99":32768}
//! ```
//!
//! Events appear in arrival order, then the span tree, then metrics.

use crate::events::Event;
use crate::{Telemetry, TrainEvent};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// Directory JSONL files land in, relative to the working directory.
pub const TELEMETRY_DIR: &str = "target/experiments/telemetry";

/// Serializes `telemetry` to `target/experiments/telemetry/<run>.jsonl`
/// and returns the written path.
///
/// The file is written to a `.tmp` sibling and atomically renamed into
/// place, so a crash mid-export never leaves a truncated, unparseable
/// telemetry file — at worst the previous complete export survives.
pub fn write_jsonl(telemetry: &Telemetry) -> std::io::Result<PathBuf> {
    let dir = Path::new(TELEMETRY_DIR);
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.jsonl", sanitize(telemetry.run())));
    let tmp = path.with_extension("jsonl.tmp");
    std::fs::write(&tmp, render_jsonl(telemetry))?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// The full JSONL document for `telemetry` (one object per line).
pub fn render_jsonl(telemetry: &Telemetry) -> String {
    let mut out = String::new();
    let unix_ms = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis()).unwrap_or(0);
    let _ = writeln!(
        out,
        "{{\"type\":\"run\",\"run\":{},\"unix_ms\":{unix_ms}}}",
        json_str(telemetry.run()),
    );
    for event in telemetry.events() {
        match event {
            Event::Phase(p) => {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"phase\",\"phase\":{},\"seq\":{}}}",
                    json_str(p.phase),
                    p.seq,
                );
            }
            Event::Train(TrainEvent::Epoch { model, epoch, loss, lr, rows }) => {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"train_epoch\",\"model\":{},\"epoch\":{epoch},\
                     \"loss\":{},\"lr\":{},\"rows\":{rows}}}",
                    json_str(model),
                    json_num(loss),
                    json_num(lr),
                );
            }
            Event::Comm(c) => {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"comm\",\"dir\":{},\"kind\":{},\"bytes\":{}}}",
                    json_str(c.direction.as_str()),
                    json_str(c.msg_kind),
                    c.bytes,
                );
            }
        }
    }
    for row in telemetry.span_rows() {
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"path\":{},\"calls\":{},\
             \"total_s\":{},\"mean_s\":{},\"max_s\":{}}}",
            json_str(&row.path),
            row.stat.calls,
            json_num(row.stat.total.as_secs_f64()),
            json_num(row.stat.mean().as_secs_f64()),
            json_num(row.stat.max.as_secs_f64()),
        );
    }
    let metrics = telemetry.metrics();
    for (name, value) in metrics.counters() {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":{},\"value\":{value}}}",
            json_str(&name),
        );
    }
    for (name, value) in metrics.gauges() {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":{},\"value\":{}}}",
            json_str(&name),
            json_num(value),
        );
    }
    for (name, hist) in metrics.histograms() {
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\
             \"p50\":{},\"p90\":{},\"p99\":{}}}",
            json_str(&name),
            hist.count(),
            json_num(hist.sum()),
            json_num(hist.quantile(0.5)),
            json_num(hist.quantile(0.9)),
            json_num(hist.quantile(0.99)),
        );
    }
    out
}

/// JSON string literal (quotes included) with minimal escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number; non-finite values become `null`.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Keeps run names filesystem-safe.
fn sanitize(run: &str) -> String {
    run.chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') { c } else { '-' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CommEvent, Direction, PhaseEvent, TelemetrySink};
    use std::time::Duration;

    #[test]
    fn renders_one_valid_looking_object_per_line() {
        let t = Telemetry::new("unit \"run\"");
        t.phase(&PhaseEvent { phase: "encode", seq: 0 });
        t.train(&TrainEvent::Epoch { model: "ae", epoch: 2, loss: 0.5, lr: 1e-3, rows: 64 });
        t.comm(&CommEvent { direction: Direction::Up, msg_kind: "Ack", bytes: 1 });
        t.record_span("fit", Duration::from_millis(250));
        t.metrics().counter("steps").add(7);
        t.metrics().gauge("loss").set(f64::NAN);

        let doc = render_jsonl(&t);
        let lines: Vec<&str> = doc.lines().collect();
        assert!(lines.len() >= 7);
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(lines[0].contains("\\\"run\\\""));
        assert!(doc.contains("\"type\":\"phase\",\"phase\":\"encode\",\"seq\":0"));
        assert!(doc.contains("\"model\":\"ae\",\"epoch\":2"));
        assert!(doc.contains("\"kind\":\"Ack\",\"bytes\":1"));
        assert!(doc.contains("\"path\":\"fit\",\"calls\":1"));
        assert!(doc.contains("\"name\":\"steps\",\"value\":7"));
        // Comm events feed the per-kind histogram too.
        assert!(doc.contains("\"name\":\"comm.bytes.Ack.up\",\"count\":1"));
        // Non-finite gauge serialises as null, not NaN.
        assert!(doc.contains("\"name\":\"loss\",\"value\":null"));
    }

    #[test]
    fn sanitize_strips_path_separators() {
        assert_eq!(sanitize("table3/quick run"), "table3-quick-run");
    }
}
