//! Hand-rolled JSONL export of a telemetry run.
//!
//! One JSON object per line, written to
//! `target/experiments/telemetry/<run>.jsonl` (relative to the working
//! directory, matching where the bench harness puts its reports). Every
//! line after the run header carries the actor scope it came from:
//!
//! ```text
//! {"type":"run","run":"table3","unix_ms":1754480000000}
//! {"type":"phase","scope":"coordinator","phase":"encode","seq":0}
//! {"type":"train_epoch","scope":"coordinator","model":"autoencoder","epoch":8,"loss":0.41,"lr":0.001,"rows":4096}
//! {"type":"comm","scope":"silo0","dir":"up","kind":"LatentUpload","bytes":16396}
//! {"type":"wire","scope":"silo0","op":"send","link":0,"dir":"up","kind":"LatentUpload","bytes":16396,"lamport":3,"at_ns":1200456}
//! {"type":"span","scope":"silo0","path":"fit/latent-train","calls":1,"total_s":1.24,"mean_s":1.24,"max_s":1.24}
//! {"type":"counter","scope":"coordinator","name":"nn.adam.steps","value":1200}
//! {"type":"gauge","scope":"coordinator","name":"train.loss.final","value":0.31}
//! {"type":"histogram","scope":"silo0","name":"comm.bytes.LatentUpload.up","count":4,"sum":65584,"nan":0,"p50":32768,"p90":32768,"p99":32768}
//! ```
//!
//! Per scope, events appear in arrival order, then the span tree, then
//! metrics. The merged causal trace is exported separately by
//! [`crate::trace::write_trace_jsonl`] as `<run>.trace.jsonl`.

use crate::events::Event;
use crate::scope::TelemetryHub;
use crate::{Telemetry, TrainEvent};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// Directory JSONL files land in, relative to the working directory.
pub const TELEMETRY_DIR: &str = "target/experiments/telemetry";

/// Serializes one scope to `target/experiments/telemetry/<run>.jsonl`
/// and returns the written path; see [`write_jsonl_hub`] for whole-run
/// export.
///
/// The file is written to a `.tmp` sibling and atomically renamed into
/// place, so a crash mid-export never leaves a truncated, unparseable
/// telemetry file — at worst the previous complete export survives.
pub fn write_jsonl(telemetry: &Telemetry) -> std::io::Result<PathBuf> {
    write_named(telemetry.run(), &render_jsonl(telemetry))
}

/// Serializes every scope of `hub` to
/// `target/experiments/telemetry/<run>.jsonl` (atomic tmp + rename) and
/// returns the written path.
pub fn write_jsonl_hub(hub: &TelemetryHub) -> std::io::Result<PathBuf> {
    write_named(hub.run(), &render_jsonl_hub(hub))
}

fn write_named(run: &str, doc: &str) -> std::io::Result<PathBuf> {
    let dir = Path::new(TELEMETRY_DIR);
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.jsonl", sanitize(run)));
    let tmp = path.with_extension("jsonl.tmp");
    std::fs::write(&tmp, doc)?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// The full JSONL document for a single scope (one object per line).
pub fn render_jsonl(telemetry: &Telemetry) -> String {
    let mut out = String::new();
    render_run_line(telemetry.run(), &mut out);
    render_scope(telemetry, &mut out);
    out
}

/// The full JSONL document for every scope of `hub`, default scope
/// first, then the others in creation order.
pub fn render_jsonl_hub(hub: &TelemetryHub) -> String {
    let mut out = String::new();
    render_run_line(hub.run(), &mut out);
    for scope in hub.scopes() {
        render_scope(&scope, &mut out);
    }
    out
}

fn render_run_line(run: &str, out: &mut String) {
    let unix_ms = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis()).unwrap_or(0);
    let _ = writeln!(out, "{{\"type\":\"run\",\"run\":{},\"unix_ms\":{unix_ms}}}", json_str(run));
}

fn render_scope(telemetry: &Telemetry, out: &mut String) {
    let scope = json_str(telemetry.actor());
    for event in telemetry.events() {
        match event {
            Event::Phase(p) => {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"phase\",\"scope\":{scope},\"phase\":{},\"seq\":{}}}",
                    json_str(p.phase),
                    p.seq,
                );
            }
            Event::Train(TrainEvent::Epoch { model, epoch, loss, lr, rows }) => {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"train_epoch\",\"scope\":{scope},\"model\":{},\"epoch\":{epoch},\
                     \"loss\":{},\"lr\":{},\"rows\":{rows}}}",
                    json_str(model),
                    json_num(loss),
                    json_num(lr),
                );
            }
            Event::Comm(c) => {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"comm\",\"scope\":{scope},\"dir\":{},\"kind\":{},\"bytes\":{}}}",
                    json_str(c.direction.as_str()),
                    json_str(c.msg_kind),
                    c.bytes,
                );
            }
            Event::Wire(w) => {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"wire\",\"scope\":{scope},\"op\":{},\"link\":{},\"dir\":{},\
                     \"kind\":{},\"bytes\":{},\"lamport\":{},\"at_ns\":{}}}",
                    json_str(w.op.as_str()),
                    w.link,
                    json_str(w.direction.as_str()),
                    json_str(w.msg_kind),
                    w.bytes,
                    w.lamport,
                    w.at_nanos,
                );
            }
        }
    }
    for row in telemetry.span_rows() {
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"scope\":{scope},\"path\":{},\"calls\":{},\
             \"total_s\":{},\"mean_s\":{},\"max_s\":{}}}",
            json_str(&row.path),
            row.stat.calls,
            json_num(row.stat.total.as_secs_f64()),
            json_num(row.stat.mean().as_secs_f64()),
            json_num(row.stat.max.as_secs_f64()),
        );
    }
    let metrics = telemetry.metrics();
    for (name, value) in metrics.counters() {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"scope\":{scope},\"name\":{},\"value\":{value}}}",
            json_str(&name),
        );
    }
    for (name, value) in metrics.gauges() {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"scope\":{scope},\"name\":{},\"value\":{}}}",
            json_str(&name),
            json_num(value),
        );
    }
    for (name, hist) in metrics.histograms() {
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"scope\":{scope},\"name\":{},\"count\":{},\"sum\":{},\
             \"nan\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            json_str(&name),
            hist.count(),
            json_num(hist.sum()),
            hist.nan_count(),
            json_num(hist.quantile(0.5)),
            json_num(hist.quantile(0.9)),
            json_num(hist.quantile(0.99)),
        );
    }
}

/// JSON string literal (quotes included) with minimal escaping.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number; non-finite values become `null`.
pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Keeps run names filesystem-safe.
pub(crate) fn sanitize(run: &str) -> String {
    run.chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') { c } else { '-' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{WireEvent, WireOp};
    use crate::{CommEvent, Direction, PhaseEvent, TelemetrySink};
    use std::time::Duration;

    #[test]
    fn renders_one_valid_looking_object_per_line() {
        let t = Telemetry::new("unit \"run\"");
        t.phase(&PhaseEvent { phase: "encode", seq: 0 });
        t.train(&TrainEvent::Epoch { model: "ae", epoch: 2, loss: 0.5, lr: 1e-3, rows: 64 });
        t.comm(&CommEvent { direction: Direction::Up, msg_kind: "Ack", bytes: 1 });
        t.record_span("fit", Duration::from_millis(250));
        t.metrics().counter("steps").add(7);
        t.metrics().gauge("loss").set(f64::NAN);

        let doc = render_jsonl(&t);
        let lines: Vec<&str> = doc.lines().collect();
        assert!(lines.len() >= 7);
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(lines[0].contains("\\\"run\\\""));
        assert!(
            doc.contains("\"type\":\"phase\",\"scope\":\"main\",\"phase\":\"encode\",\"seq\":0")
        );
        assert!(doc.contains("\"model\":\"ae\",\"epoch\":2"));
        assert!(doc.contains("\"kind\":\"Ack\",\"bytes\":1"));
        assert!(doc.contains("\"path\":\"fit\",\"calls\":1"));
        assert!(doc.contains("\"name\":\"steps\",\"value\":7"));
        // Comm events feed the per-kind histogram too.
        assert!(doc.contains("\"name\":\"comm.bytes.Ack.up\",\"count\":1"));
        // Non-finite gauge serialises as null, not NaN.
        assert!(doc.contains("\"name\":\"loss\",\"value\":null"));
    }

    #[test]
    fn hub_export_attributes_every_line_to_its_scope() {
        let hub = TelemetryHub::new("multi", "bench");
        hub.default_scope().metrics().counter("steps").add(1);
        let silo = hub.scope("silo0");
        silo.wire(&WireEvent {
            op: WireOp::Send,
            link: 3,
            direction: Direction::Up,
            msg_kind: "LatentUpload",
            bytes: 4096,
            lamport: 5,
            at_nanos: 0,
        });
        silo.record_span("encode", Duration::from_millis(10));

        let doc = render_jsonl_hub(&hub);
        assert!(doc.contains("\"type\":\"counter\",\"scope\":\"bench\",\"name\":\"steps\""));
        assert!(doc.contains(
            "\"type\":\"wire\",\"scope\":\"silo0\",\"op\":\"send\",\"link\":3,\"dir\":\"up\",\
             \"kind\":\"LatentUpload\",\"bytes\":4096,\"lamport\":5,"
        ));
        assert!(doc.contains("\"type\":\"span\",\"scope\":\"silo0\",\"path\":\"encode\""));
        // Wire timestamps are stamped by the sink from the shared epoch.
        assert!(!doc.contains("\"at_ns\":}"));
    }

    #[test]
    fn sanitize_strips_path_separators() {
        assert_eq!(sanitize("table3/quick run"), "table3-quick-run");
    }
}
