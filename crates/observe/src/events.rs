//! Telemetry event types and the pluggable [`TelemetrySink`] trait.

/// Which way a message crossed the client↔coordinator link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Client → coordinator.
    Up,
    /// Coordinator → client.
    Down,
}

impl Direction {
    /// Lowercase wire/metric label.
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Up => "up",
            Direction::Down => "down",
        }
    }
}

/// Model-training progress events.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainEvent {
    /// One (possibly throttled) training epoch/step report.
    Epoch {
        /// Which model emitted it (`"autoencoder"`, `"ddpm"`, ...).
        model: &'static str,
        /// Step or epoch index within the fit.
        epoch: u64,
        /// Loss at this step.
        loss: f64,
        /// Learning rate in effect.
        lr: f64,
        /// Rows in the batch/table this step trained on.
        rows: u64,
    },
}

/// One message crossing the simulated network link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommEvent {
    /// Transfer direction.
    pub direction: Direction,
    /// `Message::kind()` of the payload.
    pub msg_kind: &'static str,
    /// Wire size in bytes.
    pub bytes: u64,
}

/// Entry into a named pipeline phase (encode, latent-train, sample, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseEvent {
    /// Phase name.
    pub phase: &'static str,
    /// Global phase entry counter (order across the whole run).
    pub seq: u64,
}

/// Receiver for telemetry events. Every method defaults to a no-op, so a
/// sink only pays for what it overrides — and instrumented code behind a
/// disabled [`crate::enabled`] check never constructs events at all.
pub trait TelemetrySink: Send + Sync {
    /// A training progress event.
    fn train(&self, _event: &TrainEvent) {}

    /// A network transfer event.
    fn comm(&self, _event: &CommEvent) {}

    /// A pipeline phase entry.
    fn phase(&self, _event: &PhaseEvent) {}
}

/// A sink that drops everything (the trait's defaults, reified).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {}

/// A recorded event, preserved in arrival order for export.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// See [`TrainEvent`].
    Train(TrainEvent),
    /// See [`CommEvent`].
    Comm(CommEvent),
    /// See [`PhaseEvent`].
    Phase(PhaseEvent),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_accepts_everything() {
        let sink = NoopSink;
        sink.train(&TrainEvent::Epoch { model: "ae", epoch: 0, loss: 0.0, lr: 0.0, rows: 0 });
        sink.comm(&CommEvent { direction: Direction::Up, msg_kind: "Ack", bytes: 1 });
        sink.phase(&PhaseEvent { phase: "encode", seq: 0 });
    }

    #[test]
    fn direction_labels() {
        assert_eq!(Direction::Up.as_str(), "up");
        assert_eq!(Direction::Down.as_str(), "down");
    }
}
