//! Telemetry event types and the pluggable [`TelemetrySink`] trait.

/// Which way a message crossed the client↔coordinator link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Client → coordinator.
    Up,
    /// Coordinator → client.
    Down,
}

impl Direction {
    /// Lowercase wire/metric label.
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Up => "up",
            Direction::Down => "down",
        }
    }
}

/// Model-training progress events.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainEvent {
    /// One (possibly throttled) training epoch/step report.
    Epoch {
        /// Which model emitted it (`"autoencoder"`, `"ddpm"`, ...).
        model: &'static str,
        /// Step or epoch index within the fit.
        epoch: u64,
        /// Loss at this step.
        loss: f64,
        /// Learning rate in effect.
        lr: f64,
        /// Rows in the batch/table this step trained on.
        rows: u64,
    },
}

/// One message crossing the simulated network link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommEvent {
    /// Transfer direction.
    pub direction: Direction,
    /// `Message::kind()` of the payload.
    pub msg_kind: &'static str,
    /// Wire size in bytes.
    pub bytes: u64,
}

/// Whether a wire event marks a payload leaving or arriving at an actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireOp {
    /// Payload handed to the link by this actor.
    Send,
    /// Payload delivered to this actor and decoded.
    Recv,
}

impl WireOp {
    /// Lowercase wire/metric label.
    pub fn as_str(self) -> &'static str {
        match self {
            WireOp::Send => "send",
            WireOp::Recv => "recv",
        }
    }
}

/// One traced transport payload crossing a link boundary, stamped with
/// the local actor's Lamport time — the raw material of the merged
/// cross-silo trace. Only recorded when a [`crate::TraceContext`] rode
/// on the wire, i.e. when tracing was enabled at send time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireEvent {
    /// Send or receive, from the recording actor's point of view.
    pub op: WireOp,
    /// Stable link id (the transport's `link_id`), pairing the send and
    /// receive sides of the same payload across actors.
    pub link: u64,
    /// Traffic direction on the link (up = client → coordinator).
    pub direction: Direction,
    /// `Message::kind()` of the payload.
    pub msg_kind: &'static str,
    /// Base wire size in bytes (excluding the trace header itself).
    pub bytes: u64,
    /// The recording actor's Lamport time after the tick (send) or
    /// merge (receive). The *only* input to causal ordering.
    pub lamport: u64,
    /// Nanoseconds since the hub's epoch when the event was recorded;
    /// stamped by the sink (construct with 0). Used for durations in
    /// reports only — never for ordering.
    pub at_nanos: u64,
}

/// Entry into a named pipeline phase (encode, latent-train, sample, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseEvent {
    /// Phase name.
    pub phase: &'static str,
    /// Global phase entry counter (order across the whole run).
    pub seq: u64,
}

/// Receiver for telemetry events. Every method defaults to a no-op, so a
/// sink only pays for what it overrides — and instrumented code behind a
/// disabled [`crate::enabled`] check never constructs events at all.
pub trait TelemetrySink: Send + Sync {
    /// A training progress event.
    fn train(&self, _event: &TrainEvent) {}

    /// A network transfer event.
    fn comm(&self, _event: &CommEvent) {}

    /// A traced payload crossing a link boundary.
    fn wire(&self, _event: &WireEvent) {}

    /// A pipeline phase entry.
    fn phase(&self, _event: &PhaseEvent) {}
}

/// A sink that drops everything (the trait's defaults, reified).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {}

/// A recorded event, preserved in arrival order for export.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// See [`TrainEvent`].
    Train(TrainEvent),
    /// See [`CommEvent`].
    Comm(CommEvent),
    /// See [`WireEvent`].
    Wire(WireEvent),
    /// See [`PhaseEvent`].
    Phase(PhaseEvent),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_accepts_everything() {
        let sink = NoopSink;
        sink.train(&TrainEvent::Epoch { model: "ae", epoch: 0, loss: 0.0, lr: 0.0, rows: 0 });
        sink.comm(&CommEvent { direction: Direction::Up, msg_kind: "Ack", bytes: 1 });
        sink.phase(&PhaseEvent { phase: "encode", seq: 0 });
    }

    #[test]
    fn direction_labels() {
        assert_eq!(Direction::Up.as_str(), "up");
        assert_eq!(Direction::Down.as_str(), "down");
    }
}
