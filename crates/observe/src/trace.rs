//! Cross-silo distributed tracing: the wire-level [`TraceContext`],
//! Lamport-clock helpers, the causally-merged trace, and the
//! critical-path report behind `silofuse trace-report`.
//!
//! Ordering is purely logical. Each actor scope owns a Lamport clock
//! that ticks on send and merges (`max + 1`) on receive; wall-clock
//! timestamps ride along for duration accounting only and never enter
//! the sort key, so fixed-seed runs produce bit-identical orderings.

use crate::events::{Direction, Event, WireOp};
use crate::scope::TelemetryHub;
use crate::spans::SpanRow;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Deterministic 64-bit FNV-1a hash, used for trace and span ids.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The causal context a traced message carries on the wire: run-scoped
/// trace id, the sender's enclosing span path hash, and the sender's
/// Lamport time at transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Run-scoped id shared by every message of one traced run.
    pub trace_id: u64,
    /// FNV-1a hash of the sender's open span path (0 when none).
    pub parent_span: u64,
    /// The sender's Lamport time after the send tick.
    pub lamport: u64,
}

/// Ticks the current scope's Lamport clock and builds the context to
/// stamp on an outbound message. `None` when tracing is off — the
/// transport then sends the bare, header-free encoding.
pub fn ctx_for_send() -> Option<TraceContext> {
    let scope = crate::handle()?;
    let hub = crate::hub()?;
    Some(TraceContext {
        trace_id: hub.trace_id(),
        parent_span: crate::spans::current_path_hash(),
        lamport: scope.tick_lamport(),
    })
}

/// Merges a received context into the current scope's Lamport clock and
/// returns the local time after the merge (0 when tracing is off).
pub fn merge_on_recv(ctx: &TraceContext) -> u64 {
    crate::handle().map(|scope| scope.merge_lamport(ctx.lamport)).unwrap_or(0)
}

/// One wire event in the merged cross-silo trace, attributed to its
/// actor and ordered by `(lamport, actor, seq)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRow {
    /// Actor scope that recorded the event.
    pub actor: String,
    /// Arrival index among this actor's wire events (ties within one
    /// Lamport tick stay in recording order).
    pub seq: u64,
    /// Send or receive.
    pub op: WireOp,
    /// Link id pairing both sides of the same payload.
    pub link: u64,
    /// Traffic direction on the link.
    pub direction: Direction,
    /// Message kind.
    pub kind: String,
    /// Base wire bytes (trace header excluded).
    pub bytes: u64,
    /// The actor's Lamport time at the event.
    pub lamport: u64,
    /// Nanoseconds since the hub epoch (durations only, never ordering).
    pub at_nanos: u64,
}

/// Per-actor totals reconciling the trace against the span trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActorSummary {
    /// Actor scope name.
    pub actor: String,
    /// Total recorded span time, counting each self-rooted span subtree
    /// once (nested recorded spans are already inside their parents).
    pub total: Duration,
    /// Time spent blocked in transport receives (`comm-wait` spans).
    pub comm_wait: Duration,
    /// Traced payloads sent by this actor.
    pub sends: u64,
    /// Traced payloads received by this actor.
    pub recvs: u64,
    /// Base bytes out across traced sends.
    pub bytes_out: u64,
    /// Base bytes in across traced receives.
    pub bytes_in: u64,
    /// The actor's final Lamport time.
    pub max_lamport: u64,
}

impl ActorSummary {
    /// Span time not spent waiting on the wire.
    pub fn compute(&self) -> Duration {
        self.total.saturating_sub(self.comm_wait)
    }
}

/// The merged trace plus its critical path, ready to render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// Run name the trace came from.
    pub run: String,
    /// Run-scoped trace id.
    pub trace_id: u64,
    /// All wire events in causal `(lamport, actor, seq)` order.
    pub rows: Vec<TraceRow>,
    /// Per-actor reconciliation totals, sorted by actor name (scope
    /// creation order races across threads).
    pub actors: Vec<ActorSummary>,
    /// Indices into `rows` forming the longest causal chain ending at
    /// the maximum Lamport time.
    pub critical_path: Vec<usize>,
}

/// Collects every scope's wire events and span totals from `hub` into a
/// merged, causally-ordered report.
pub fn collect(hub: &TelemetryHub) -> TraceReport {
    let mut rows = Vec::new();
    let mut actors = Vec::new();
    for scope in hub.scopes() {
        let actor = scope.actor().to_string();
        let (mut seq, mut sends, mut recvs) = (0u64, 0u64, 0u64);
        let (mut bytes_out, mut bytes_in) = (0u64, 0u64);
        for event in scope.events() {
            if let Event::Wire(w) = event {
                match w.op {
                    WireOp::Send => {
                        sends += 1;
                        bytes_out += w.bytes;
                    }
                    WireOp::Recv => {
                        recvs += 1;
                        bytes_in += w.bytes;
                    }
                }
                rows.push(TraceRow {
                    actor: actor.clone(),
                    seq,
                    op: w.op,
                    link: w.link,
                    direction: w.direction,
                    kind: w.msg_kind.to_string(),
                    bytes: w.bytes,
                    lamport: w.lamport,
                    at_nanos: w.at_nanos,
                });
                seq += 1;
            }
        }
        let (total, comm_wait) = span_totals(&scope.span_rows());
        actors.push(ActorSummary {
            actor,
            total,
            comm_wait,
            sends,
            recvs,
            bytes_out,
            bytes_in,
            max_lamport: scope.lamport(),
        });
    }
    build_report(hub.run(), hub.trace_id(), rows, actors)
}

/// Sums a scope's span tree into `(total, comm_wait)`: `total` counts
/// each recorded span subtree exactly once (rows with a recorded
/// ancestor are already inside that ancestor's total), `comm_wait` sums
/// every recorded `comm-wait` row.
pub fn span_totals(rows: &[SpanRow]) -> (Duration, Duration) {
    let mut total = Duration::ZERO;
    let mut comm_wait = Duration::ZERO;
    // Recorded-flags for the current ancestor chain, indexed by depth.
    let mut recorded_chain: Vec<bool> = Vec::new();
    for row in rows {
        recorded_chain.truncate(row.depth);
        let recorded = row.stat.calls > 0;
        if recorded && !recorded_chain.iter().any(|&r| r) {
            total += row.stat.total;
        }
        if recorded && row.name == crate::names::COMM_WAIT_SPAN {
            comm_wait += row.stat.total;
        }
        recorded_chain.push(recorded);
    }
    (total, comm_wait)
}

/// Sorts rows causally and walks the critical path back from the event
/// with the maximum Lamport time.
pub fn build_report(
    run: &str,
    trace_id: u64,
    mut rows: Vec<TraceRow>,
    mut actors: Vec<ActorSummary>,
) -> TraceReport {
    rows.sort_by(|a, b| {
        (a.lamport, a.actor.as_str(), a.seq).cmp(&(b.lamport, b.actor.as_str(), b.seq))
    });
    // Scope creation order races across silo threads; sorting by name
    // keeps the report a pure function of the causal history.
    actors.sort_by(|a, b| a.actor.cmp(&b.actor));
    let critical_path = critical_path(&rows);
    TraceReport { run: run.to_string(), trace_id, rows, actors, critical_path }
}

/// The causal chain ending at the last event of the sorted trace: from
/// each receive, step back to either the matched send (k-th send on a
/// link matches the k-th receive — links are FIFO) or the actor's own
/// previous event, whichever carries the later Lamport time.
fn critical_path(rows: &[TraceRow]) -> Vec<usize> {
    if rows.is_empty() {
        return Vec::new();
    }
    let mut by_actor_seq: HashMap<(&str, u64), usize> = HashMap::new();
    let mut send_lists: HashMap<(u64, Direction), Vec<usize>> = HashMap::new();
    let mut recv_lists: HashMap<(u64, Direction), Vec<usize>> = HashMap::new();
    for (i, row) in rows.iter().enumerate() {
        by_actor_seq.insert((row.actor.as_str(), row.seq), i);
        let lists = match row.op {
            WireOp::Send => &mut send_lists,
            WireOp::Recv => &mut recv_lists,
        };
        lists.entry((row.link, row.direction)).or_default().push(i);
    }
    // Within one (link, direction) all sends come from a single actor,
    // so ordering by that actor's seq recovers FIFO transmission order.
    for lists in [&mut send_lists, &mut recv_lists] {
        for indices in lists.values_mut() {
            indices.sort_by_key(|&i| rows[i].seq);
        }
    }
    let mut matched_send: HashMap<usize, usize> = HashMap::new();
    for (key, recvs) in &recv_lists {
        if let Some(sends) = send_lists.get(key) {
            for (k, &recv_idx) in recvs.iter().enumerate() {
                if let Some(&send_idx) = sends.get(k) {
                    matched_send.insert(recv_idx, send_idx);
                }
            }
        }
    }
    let mut path = Vec::new();
    let mut cursor = rows.len() - 1;
    loop {
        path.push(cursor);
        let row = &rows[cursor];
        let prev_own = row
            .seq
            .checked_sub(1)
            .and_then(|seq| by_actor_seq.get(&(row.actor.as_str(), seq)).copied());
        let via_send =
            if row.op == WireOp::Recv { matched_send.get(&cursor).copied() } else { None };
        cursor = match (prev_own, via_send) {
            (None, None) => break,
            (Some(p), None) => p,
            (None, Some(s)) => s,
            (Some(p), Some(s)) => {
                if rows[s].lamport >= rows[p].lamport {
                    s
                } else {
                    p
                }
            }
        };
    }
    path.reverse();
    path
}

/// Plain-text critical-path / comm-wait-vs-compute report.
pub fn render_report(report: &TraceReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace report · run {} · trace_id {:016x} · {} wire events",
        report.run,
        report.trace_id,
        report.rows.len()
    );
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>10} {:>10} {:>6} {:>6} {:>12} {:>12} {:>9}",
        "actor",
        "span total",
        "comm-wait",
        "compute",
        "sends",
        "recvs",
        "bytes out",
        "bytes in",
        "lamport"
    );
    for a in &report.actors {
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>10} {:>10} {:>6} {:>6} {:>12} {:>12} {:>9}",
            a.actor,
            crate::fmt_duration(a.total),
            crate::fmt_duration(a.comm_wait),
            crate::fmt_duration(a.compute()),
            a.sends,
            a.recvs,
            a.bytes_out,
            a.bytes_in,
            a.max_lamport
        );
    }
    if report.critical_path.is_empty() {
        let _ = writeln!(out, "critical path: (no traced wire events)");
        return out;
    }
    let _ = writeln!(out, "critical path ({} hops):", report.critical_path.len());
    let mut hops_per_actor: Vec<(String, u64)> = Vec::new();
    for &i in &report.critical_path {
        let row = &report.rows[i];
        let _ = writeln!(
            out,
            "  L{:<6} {:<14} {:<4} {:<18} link {:<3} {:<4} {:>10} B",
            row.lamport,
            row.actor,
            row.op.as_str(),
            row.kind,
            row.link,
            row.direction.as_str(),
            row.bytes
        );
        match hops_per_actor.iter_mut().find(|(actor, _)| *actor == row.actor) {
            Some((_, n)) => *n += 1,
            None => hops_per_actor.push((row.actor.clone(), 1)),
        }
    }
    let summary: Vec<String> =
        hops_per_actor.iter().map(|(actor, n)| format!("{actor} {n}")).collect();
    let _ = writeln!(out, "critical-path hops by actor: {}", summary.join(", "));
    out
}

/// Serializes a report to trace JSONL: one `trace_run` line, one `actor`
/// line per scope, then one `wire` line per event in causal order.
pub fn render_trace_jsonl(report: &TraceReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"trace_run\",\"run\":{},\"trace_id\":{},\"events\":{}}}",
        crate::export::json_str(&report.run),
        report.trace_id,
        report.rows.len()
    );
    for a in &report.actors {
        let _ = writeln!(
            out,
            "{{\"type\":\"actor\",\"actor\":{},\"total_ns\":{},\"comm_wait_ns\":{},\
             \"sends\":{},\"recvs\":{},\"bytes_out\":{},\"bytes_in\":{},\"max_lamport\":{}}}",
            crate::export::json_str(&a.actor),
            a.total.as_nanos(),
            a.comm_wait.as_nanos(),
            a.sends,
            a.recvs,
            a.bytes_out,
            a.bytes_in,
            a.max_lamport
        );
    }
    for row in &report.rows {
        let _ = writeln!(
            out,
            "{{\"type\":\"wire\",\"actor\":{},\"seq\":{},\"op\":{},\"link\":{},\
             \"dir\":{},\"kind\":{},\"bytes\":{},\"lamport\":{},\"at_ns\":{}}}",
            crate::export::json_str(&row.actor),
            row.seq,
            crate::export::json_str(row.op.as_str()),
            row.link,
            crate::export::json_str(row.direction.as_str()),
            crate::export::json_str(&row.kind),
            row.bytes,
            row.lamport,
            row.at_nanos
        );
    }
    out
}

/// Collects `hub` and writes the merged trace next to the telemetry
/// JSONL as `target/experiments/telemetry/<run>.trace.jsonl` (atomic
/// tmp + rename), returning the written path.
pub fn write_trace_jsonl(hub: &TelemetryHub) -> std::io::Result<PathBuf> {
    let report = collect(hub);
    let dir = Path::new(crate::export::TELEMETRY_DIR);
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.trace.jsonl", crate::export::sanitize(&report.run)));
    let tmp = path.with_extension("jsonl.tmp");
    std::fs::write(&tmp, render_trace_jsonl(&report))?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Parses trace JSONL produced by [`render_trace_jsonl`] back into a
/// report (critical path recomputed), for `silofuse trace-report` and
/// round-trip tests. Lines of unknown type are skipped; malformed known
/// lines are an error.
pub fn parse_trace_jsonl(text: &str) -> Result<TraceReport, String> {
    let mut run = String::new();
    let mut trace_id = 0u64;
    let mut rows = Vec::new();
    let mut actors = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let kind = field(line, "type").ok_or_else(|| format!("line {}: no type", lineno + 1))?;
        let ctx = |key: &str| {
            field(line, key).ok_or_else(|| format!("line {}: missing {key}", lineno + 1))
        };
        let num = |key: &str| -> Result<u64, String> {
            ctx(key)?.parse::<u64>().map_err(|e| format!("line {}: bad {key}: {e}", lineno + 1))
        };
        match kind {
            "trace_run" => {
                run = ctx("run")?.to_string();
                trace_id = num("trace_id")?;
            }
            "actor" => {
                actors.push(ActorSummary {
                    actor: ctx("actor")?.to_string(),
                    total: Duration::from_nanos(num("total_ns")?),
                    comm_wait: Duration::from_nanos(num("comm_wait_ns")?),
                    sends: num("sends")?,
                    recvs: num("recvs")?,
                    bytes_out: num("bytes_out")?,
                    bytes_in: num("bytes_in")?,
                    max_lamport: num("max_lamport")?,
                });
            }
            "wire" => {
                let op = match ctx("op")? {
                    "send" => WireOp::Send,
                    "recv" => WireOp::Recv,
                    other => return Err(format!("line {}: bad op {other:?}", lineno + 1)),
                };
                let direction = match ctx("dir")? {
                    "up" => Direction::Up,
                    "down" => Direction::Down,
                    other => return Err(format!("line {}: bad dir {other:?}", lineno + 1)),
                };
                rows.push(TraceRow {
                    actor: ctx("actor")?.to_string(),
                    seq: num("seq")?,
                    op,
                    link: num("link")?,
                    direction,
                    kind: ctx("kind")?.to_string(),
                    bytes: num("bytes")?,
                    lamport: num("lamport")?,
                    at_nanos: num("at_ns")?,
                });
            }
            _ => {}
        }
    }
    Ok(build_report(&run, trace_id, rows, actors))
}

// Extracts the value of `"key":...` from one flat JSON object line. Our
// exporter never nests objects and only escapes control characters that
// cannot appear in actor/kind/run identifiers, so a scan suffices.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pattern = format!("\"{key}\":");
    let start = line.find(&pattern)? + pattern.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some(&stripped[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans::SpanStat;

    fn row(actor: &str, seq: u64, op: WireOp, link: u64, lamport: u64) -> TraceRow {
        TraceRow {
            actor: actor.to_string(),
            seq,
            op,
            link,
            direction: Direction::Up,
            kind: "LatentUpload".to_string(),
            bytes: 100,
            lamport,
            at_nanos: 0,
        }
    }

    #[test]
    fn fnv1a_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"silofuse"), fnv1a(b"silofuse"));
        assert_ne!(fnv1a(b"silo0"), fnv1a(b"silo1"));
    }

    #[test]
    fn critical_path_crosses_the_wire_at_the_matched_send() {
        // silo0 sends at L1; coordinator receives at L2 then sends an
        // ack at L3. The chain must be send → recv → send.
        let rows = vec![
            row("silo0", 0, WireOp::Send, 7, 1),
            row("coordinator", 0, WireOp::Recv, 7, 2),
            row("coordinator", 1, WireOp::Send, 7, 3),
        ];
        let report = build_report("t", 1, rows, Vec::new());
        let actors: Vec<&str> =
            report.critical_path.iter().map(|&i| report.rows[i].actor.as_str()).collect();
        assert_eq!(actors, vec!["silo0", "coordinator", "coordinator"]);
    }

    #[test]
    fn causal_sort_breaks_lamport_ties_deterministically() {
        let rows = vec![row("silo1", 0, WireOp::Send, 2, 1), row("silo0", 0, WireOp::Send, 1, 1)];
        let report = build_report("t", 1, rows, Vec::new());
        assert_eq!(report.rows[0].actor, "silo0", "ties order by actor name");
    }

    #[test]
    fn span_totals_count_self_rooted_subtrees_once() {
        let mk = |depth: usize, name: &str, calls: u64, ms: u64| SpanRow {
            depth,
            name: name.to_string(),
            path: name.to_string(),
            stat: SpanStat {
                calls,
                total: Duration::from_millis(ms),
                max: Duration::from_millis(ms),
            },
        };
        let rows = vec![
            mk(0, "evaluate", 0, 0),    // unrecorded interior node
            mk(1, "fit", 1, 100),       // self-rooted: counted
            mk(2, "comm-wait", 4, 30),  // nested in fit: not re-counted
            mk(1, "synthesize", 1, 50), // self-rooted: counted
            mk(2, "comm-wait", 2, 10),
        ];
        let (total, wait) = span_totals(&rows);
        assert_eq!(total, Duration::from_millis(150));
        assert_eq!(wait, Duration::from_millis(40));
    }

    #[test]
    fn trace_jsonl_round_trips() {
        let rows =
            vec![row("silo0", 0, WireOp::Send, 7, 1), row("coordinator", 0, WireOp::Recv, 7, 2)];
        let actors = vec![ActorSummary {
            actor: "silo0".to_string(),
            total: Duration::from_nanos(123_456_789),
            comm_wait: Duration::from_nanos(23_456_789),
            sends: 1,
            recvs: 0,
            bytes_out: 100,
            bytes_in: 0,
            max_lamport: 1,
        }];
        let report = build_report("round-trip", 42, rows, actors);
        let parsed = parse_trace_jsonl(&render_trace_jsonl(&report)).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn render_report_reconciles_compute_plus_wait() {
        let actors = vec![ActorSummary {
            actor: "coordinator".to_string(),
            total: Duration::from_millis(100),
            comm_wait: Duration::from_millis(40),
            sends: 2,
            recvs: 2,
            bytes_out: 10,
            bytes_in: 20,
            max_lamport: 9,
        }];
        let report = build_report("r", 1, vec![row("coordinator", 0, WireOp::Send, 1, 1)], actors);
        assert_eq!(report.actors[0].compute(), Duration::from_millis(60));
        let text = render_report(&report);
        assert!(text.contains("critical path (1 hops)"));
        assert!(text.contains("coordinator"));
        assert!(text.contains("comm-wait"));
    }
}
