//! Scoped RAII span timers aggregating into a per-path span tree.
//!
//! Each thread keeps its own stack of open span names; a span's identity
//! is the `"/"`-joined path of names open on that thread when it started.
//! Stats (call count, total/mean/max wall-clock) are folded into the
//! global [`crate::Telemetry`] keyed by path, so the same code path called
//! from several threads aggregates into one row.

use std::cell::RefCell;
use std::time::{Duration, Instant};

/// Aggregated timings for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed calls.
    pub calls: u64,
    /// Total wall-clock across calls.
    pub total: Duration,
    /// Longest single call.
    pub max: Duration,
}

impl SpanStat {
    /// Mean wall-clock per call (zero when no calls completed).
    pub fn mean(&self) -> Duration {
        if self.calls == 0 {
            Duration::ZERO
        } else {
            self.total / self.calls as u32
        }
    }
}

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Opens a span named `name` nested under this thread's currently open
/// spans. Timing stops when the returned guard drops (or on
/// [`SpanGuard::stop`]). When tracing is off the guard still measures
/// elapsed time — so `stop()` doubles as a plain timer — but records
/// nothing and stays off the thread's span stack.
pub fn span(name: &str) -> SpanGuard {
    let active = crate::enabled();
    if active {
        STACK.with(|s| s.borrow_mut().push(name.to_string()));
    }
    SpanGuard { start: Some(Instant::now()), active }
}

/// Deterministic id of this thread's currently open span path: the
/// FNV-1a hash of the `"/"`-joined stack, 0 when no spans are open.
/// Stamped into outbound [`crate::TraceContext`]s as the parent span, so
/// a wire payload can be tied back to the code path that sent it.
pub fn current_path_hash() -> u64 {
    STACK.with(|s| {
        let stack = s.borrow();
        if stack.is_empty() {
            0
        } else {
            crate::trace::fnv1a(stack.join("/").as_bytes())
        }
    })
}

/// RAII handle for an open span; records elapsed time when dropped.
#[must_use = "dropping the guard immediately records a ~zero-length span"]
pub struct SpanGuard {
    start: Option<Instant>,
    active: bool,
}

impl SpanGuard {
    /// Whether this guard records into the span tree (tracing was on at
    /// open). Inactive guards still time, but record nothing.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Ends the span now and returns its elapsed wall-clock time.
    pub fn stop(mut self) -> Duration {
        self.finish().unwrap_or(Duration::ZERO)
    }

    fn finish(&mut self) -> Option<Duration> {
        let start = self.start.take()?;
        let elapsed = start.elapsed();
        if self.active {
            let path = STACK.with(|s| {
                let mut stack = s.borrow_mut();
                let path = stack.join("/");
                stack.pop();
                path
            });
            if let Some(t) = crate::handle() {
                t.record_span(&path, elapsed);
            }
        }
        Some(elapsed)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

/// One row of the flattened span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRow {
    /// Nesting depth (root spans are 0).
    pub depth: usize,
    /// Last path segment.
    pub name: String,
    /// Full `"/"`-joined path.
    pub path: String,
    /// Aggregated timings.
    pub stat: SpanStat,
}

#[derive(Debug)]
struct Node {
    name: String,
    stat: SpanStat,
    order: u64,
    children: Vec<Node>,
}

/// Flattens `(path, stat, first-recorded order)` triples into a
/// depth-first row list, siblings ordered by first recording. Interior
/// paths that were never recorded themselves appear with zero calls.
pub fn build_rows<'a>(entries: impl Iterator<Item = (&'a str, SpanStat, u64)>) -> Vec<SpanRow> {
    let mut roots: Vec<Node> = Vec::new();
    for (path, stat, order) in entries {
        let mut level = &mut roots;
        let segments: Vec<&str> = path.split('/').collect();
        for (i, segment) in segments.iter().enumerate() {
            let pos = match level.iter().position(|n| n.name == *segment) {
                Some(pos) => pos,
                None => {
                    level.push(Node {
                        name: segment.to_string(),
                        stat: SpanStat::default(),
                        order: u64::MAX,
                        children: Vec::new(),
                    });
                    level.len() - 1
                }
            };
            if i + 1 == segments.len() {
                level[pos].stat = stat;
                level[pos].order = order;
            }
            let descend = level;
            level = &mut descend[pos].children;
        }
    }
    sort_nodes(&mut roots);
    let mut rows = Vec::new();
    flatten(&roots, 0, "", &mut rows);
    rows
}

fn min_order(node: &Node) -> u64 {
    node.children.iter().map(min_order).fold(node.order, u64::min)
}

fn sort_nodes(nodes: &mut [Node]) {
    nodes.sort_by_key(min_order);
    for node in nodes {
        sort_nodes(&mut node.children);
    }
}

fn flatten(nodes: &[Node], depth: usize, prefix: &str, rows: &mut Vec<SpanRow>) {
    for node in nodes {
        let path =
            if prefix.is_empty() { node.name.clone() } else { format!("{prefix}/{}", node.name) };
        rows.push(SpanRow { depth, name: node.name.clone(), path: path.clone(), stat: node.stat });
        flatten(&node.children, depth + 1, &path, rows);
    }
}

/// Plain-text table of span rows: indented name, calls, total/mean/max.
pub fn render_rows(rows: &[SpanRow]) -> String {
    let mut out = String::new();
    let name_width = rows
        .iter()
        .map(|r| 2 * r.depth + r.name.len())
        .chain(std::iter::once("span".len()))
        .max()
        .unwrap_or(4);
    out.push_str(&format!(
        "{:<name_width$}  {:>6}  {:>10}  {:>10}  {:>10}\n",
        "span", "calls", "total", "mean", "max"
    ));
    for row in rows {
        let label = format!("{}{}", "  ".repeat(row.depth), row.name);
        out.push_str(&format!(
            "{label:<name_width$}  {:>6}  {:>10}  {:>10}  {:>10}\n",
            row.stat.calls,
            fmt_duration(row.stat.total),
            fmt_duration(row.stat.mean()),
            fmt_duration(row.stat.max),
        ));
    }
    out
}

/// Compact human-readable duration (`1.23s`, `45.6ms`, `789us`).
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.1}ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.0}us", secs * 1e6)
    } else if secs == 0.0 {
        "0".to_string()
    } else {
        format!("{:.0}ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(calls: u64, millis: u64) -> SpanStat {
        SpanStat { calls, total: Duration::from_millis(millis), max: Duration::from_millis(millis) }
    }

    #[test]
    fn rows_follow_first_recorded_order_not_alphabetical() {
        let rows = build_rows(
            [
                ("run/score", stat(1, 5), 2),
                ("run/encode", stat(1, 10), 0),
                ("run/sample", stat(3, 30), 1),
                ("run", stat(1, 50), 3),
            ]
            .into_iter(),
        );
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["run", "encode", "sample", "score"]);
        assert_eq!(rows[0].depth, 0);
        assert!(rows[1..].iter().all(|r| r.depth == 1));
        assert_eq!(rows[2].stat.mean(), Duration::from_millis(10));
    }

    #[test]
    fn unrecorded_interior_nodes_get_zero_stats() {
        let rows = build_rows([("a/b/c", stat(2, 8), 0)].into_iter());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].path, "a");
        assert_eq!(rows[0].stat.calls, 0);
        assert_eq!(rows[2].path, "a/b/c");
        assert_eq!(rows[2].stat.calls, 2);
    }

    #[test]
    fn render_includes_header_and_all_rows() {
        let rows =
            build_rows([("fit", stat(1, 1500), 0), ("fit/train", stat(4, 1200), 1)].into_iter());
        let text = render_rows(&rows);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("span"));
        assert!(lines[1].contains("1.50s"));
        assert!(lines[2].contains("  train"));
        assert!(lines[2].contains("300.0ms"));
    }

    #[test]
    fn fmt_duration_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(45)), "45.0ms");
        assert_eq!(fmt_duration(Duration::from_micros(789)), "789us");
        assert_eq!(fmt_duration(Duration::ZERO), "0");
    }
}
