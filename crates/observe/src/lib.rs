//! Spans, metrics, and run telemetry for the SiloFuse stack.
//!
//! Everything routes through one process-global [`Telemetry`] instance
//! behind an `AtomicBool` fast path: until [`init`] is called, every
//! instrumentation entry point ([`span`], [`comm`], [`train_epoch`], ...)
//! is a single relaxed atomic load and an immediate return, so
//! instrumented code pays nothing when tracing is off.
//!
//! The pieces:
//! - [`spans`] — scoped RAII wall-clock timers that nest into a span tree
//!   (per-path call counts, total/mean/max), thread-aware via a
//!   thread-local span stack.
//! - [`metrics`] — a registry of counters, gauges, and fixed-bucket
//!   log₂ histograms with p50/p90/p99 readout.
//! - [`events`] — the [`TelemetrySink`] trait plus the concrete
//!   train/comm/phase event types; sink methods default to no-ops.
//! - [`export`] — a hand-rolled JSONL exporter writing
//!   `target/experiments/telemetry/<run>.jsonl` and the human-readable
//!   span-tree renderer.

pub mod events;
pub mod export;
pub mod metrics;
pub mod spans;

/// Canonical metric and span names emitted by the transport fault layer,
/// so producers (`silofuse-distributed`) and consumers (bench reports,
/// tests) cannot drift apart on spelling.
pub mod names {
    /// Counter: transmissions silently dropped by the fault injector.
    pub const FAULT_DROP: &str = "fault.drop";
    /// Counter: transmissions delivered twice by the fault injector.
    pub const FAULT_DUPLICATE: &str = "fault.duplicate";
    /// Counter: transmissions delayed by the fault injector.
    pub const FAULT_DELAY: &str = "fault.delay";
    /// Counter: links killed by a scripted disconnect.
    pub const FAULT_DISCONNECT: &str = "fault.disconnect";
    /// Span wrapping each fault-injection decision on the send path.
    pub const FAULT_INJECT_SPAN: &str = "fault-inject";
    /// Counter: data frames retransmitted by the reliability layer.
    pub const TRANSPORT_RETRANSMIT: &str = "transport.retransmit";
    /// Counter: bounded receives that expired without a frame.
    pub const TRANSPORT_TIMEOUT: &str = "transport.timeout";
    /// Counter: replayed frames discarded by the dedup window.
    pub const TRANSPORT_DUPLICATE: &str = "transport.duplicate_dropped";
    /// Counter: checkpoints written by `silofuse-checkpoint`.
    pub const CHECKPOINT_WRITES: &str = "checkpoint.writes";
    /// Counter: checkpoints loaded for resume.
    pub const CHECKPOINT_LOADS: &str = "checkpoint.loads";
    /// Counter: total checkpoint bytes written.
    pub const CHECKPOINT_BYTES: &str = "checkpoint.bytes_written";
    /// Counter: injected process crashes fired.
    pub const CHECKPOINT_CRASH: &str = "checkpoint.crash_injected";
    /// Span wrapping each atomic checkpoint write.
    pub const CHECKPOINT_WRITE_SPAN: &str = "checkpoint.write";
    /// Span wrapping each checkpoint load + verification.
    pub const CHECKPOINT_LOAD_SPAN: &str = "checkpoint.load";
    /// Counter: synthetic latent rows produced by the batched sampler.
    pub const SYNTH_ROWS: &str = "synth.rows";
    /// Counter: latent chunks streamed by the batched sampler.
    pub const SYNTH_CHUNKS: &str = "synth.chunks";
    /// Span wrapping one streamed chunk of batched reverse diffusion.
    pub const SYNTH_CHUNK_SPAN: &str = "synth.chunk";
}

pub use events::{CommEvent, Direction, Event, NoopSink, PhaseEvent, TelemetrySink, TrainEvent};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use spans::{fmt_duration, SpanGuard, SpanRow, SpanStat};

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<RwLock<Option<Arc<Telemetry>>>> = OnceLock::new();

fn slot() -> &'static RwLock<Option<Arc<Telemetry>>> {
    GLOBAL.get_or_init(|| RwLock::new(None))
}

/// Installs a fresh [`Telemetry`] named `run` and enables instrumentation.
///
/// Replaces any previously installed instance (its data is dropped unless
/// another `Arc` to it is held), so tests can re-init freely.
pub fn init(run: &str) -> Arc<Telemetry> {
    let telemetry = Arc::new(Telemetry::new(run));
    *slot().write().unwrap_or_else(|e| e.into_inner()) = Some(telemetry.clone());
    ENABLED.store(true, Ordering::SeqCst);
    telemetry
}

/// Disables instrumentation and drops the installed [`Telemetry`].
pub fn shutdown() {
    ENABLED.store(false, Ordering::SeqCst);
    *slot().write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Whether instrumentation is currently live. One relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed telemetry, if tracing is enabled.
pub fn handle() -> Option<Arc<Telemetry>> {
    if !enabled() {
        return None;
    }
    slot().read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Opens a scoped span timer; see [`spans::span`].
#[inline]
pub fn span(name: &str) -> SpanGuard {
    spans::span(name)
}

/// Opens a pipeline-phase span: emits a [`PhaseEvent`] with a global
/// sequence number, then behaves exactly like [`span`].
pub fn phase(name: &'static str) -> SpanGuard {
    if let Some(t) = handle() {
        let event = PhaseEvent { phase: name, seq: t.next_phase_seq() };
        TelemetrySink::phase(&*t, &event);
    }
    spans::span(name)
}

/// Emits a per-epoch training event; no-op when tracing is off.
pub fn train_epoch(model: &'static str, epoch: u64, loss: f64, lr: f64, rows: u64) {
    if let Some(t) = handle() {
        t.train(&TrainEvent::Epoch { model, epoch, loss, lr, rows });
    }
}

/// Emits a communication event and feeds the per-message-kind byte
/// histogram `comm.bytes.<kind>.<up|down>`; no-op when tracing is off.
pub fn comm(direction: Direction, msg_kind: &'static str, bytes: u64) {
    if let Some(t) = handle() {
        t.comm(&CommEvent { direction, msg_kind, bytes });
    }
}

/// Adds `n` to the named counter; no-op when tracing is off.
pub fn count(name: &str, n: u64) {
    if let Some(t) = handle() {
        t.metrics().counter(name).add(n);
    }
}

/// Sets the named gauge; no-op when tracing is off.
pub fn gauge(name: &str, value: f64) {
    if let Some(t) = handle() {
        t.metrics().gauge(name).set(value);
    }
}

/// Records `value` into the named histogram; no-op when tracing is off.
pub fn record(name: &str, value: f64) {
    if let Some(t) = handle() {
        t.metrics().histogram(name).observe(value);
    }
}

/// Event-throttling stride: emit roughly 32 epoch events over `steps`
/// training steps (always including step 0).
pub fn epoch_stride(steps: usize) -> usize {
    (steps / 32).max(1)
}

/// The concrete telemetry store: span tree, metrics registry, and the
/// recorded event log. Implements [`TelemetrySink`] by recording.
pub struct Telemetry {
    run: String,
    spans: Mutex<HashMap<String, SpanEntry>>,
    span_order: AtomicU64,
    metrics: Registry,
    events: Mutex<Vec<Event>>,
    phase_seq: AtomicU64,
}

#[derive(Debug, Clone, Copy)]
struct SpanEntry {
    stat: SpanStat,
    order: u64,
}

impl Telemetry {
    /// A fresh, empty store for run `run`.
    pub fn new(run: &str) -> Self {
        Self {
            run: run.to_string(),
            spans: Mutex::new(HashMap::new()),
            span_order: AtomicU64::new(0),
            metrics: Registry::new(),
            events: Mutex::new(Vec::new()),
            phase_seq: AtomicU64::new(0),
        }
    }

    /// The run name this telemetry was installed under.
    pub fn run(&self) -> &str {
        &self.run
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Snapshot of every recorded event, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn next_phase_seq(&self) -> u64 {
        self.phase_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Folds one timed call into the span tree under `path`
    /// (`"/"`-separated). Called by [`SpanGuard`] on drop.
    pub fn record_span(&self, path: &str, elapsed: Duration) {
        let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        let entry = spans.entry(path.to_string()).or_insert_with(|| SpanEntry {
            stat: SpanStat::default(),
            order: self.span_order.fetch_add(1, Ordering::Relaxed),
        });
        entry.stat.calls += 1;
        entry.stat.total += elapsed;
        entry.stat.max = entry.stat.max.max(elapsed);
    }

    /// The aggregated span tree flattened depth-first, siblings in
    /// first-recorded order. Parents that never completed themselves
    /// appear with zero calls.
    pub fn span_rows(&self) -> Vec<SpanRow> {
        let spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        spans::build_rows(spans.iter().map(|(path, e)| (path.as_str(), e.stat, e.order)))
    }

    /// Plain-text span-tree summary (indented, aligned columns).
    pub fn render_span_tree(&self) -> String {
        spans::render_rows(&self.span_rows())
    }
}

impl TelemetrySink for Telemetry {
    fn train(&self, event: &TrainEvent) {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).push(Event::Train(event.clone()));
    }

    fn comm(&self, event: &CommEvent) {
        let name = format!("comm.bytes.{}.{}", event.msg_kind, event.direction.as_str());
        self.metrics.histogram(&name).observe(event.bytes as f64);
        self.events.lock().unwrap_or_else(|e| e.into_inner()).push(Event::Comm(event.clone()));
    }

    fn phase(&self, event: &PhaseEvent) {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).push(Event::Phase(event.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global telemetry slot is process-wide; serialize the tests
    // that install into it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_instrumentation_is_inert() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        shutdown();
        assert!(!enabled());
        assert!(handle().is_none());
        let g = span("never-recorded");
        assert!(!g.is_active());
        drop(g);
        train_epoch("ae", 0, 1.0, 1e-3, 64);
        comm(Direction::Up, "LatentUpload", 128);
        count("c", 1);
    }

    #[test]
    fn init_records_spans_events_and_metrics() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let t = init("unit");
        {
            let _outer = span("outer");
            let _inner = span("inner");
            std::thread::sleep(Duration::from_millis(1));
        }
        train_epoch("ae", 3, 0.5, 1e-3, 64);
        comm(Direction::Down, "Ack", 1);
        count("steps", 2);
        count("steps", 3);
        shutdown();

        assert_eq!(t.run(), "unit");
        let rows = t.span_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "outer");
        assert_eq!(rows[1].name, "inner");
        assert_eq!(rows[1].depth, 1);
        assert!(rows[0].stat.total >= rows[1].stat.total);

        let events = t.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], Event::Train(TrainEvent::Epoch { epoch: 3, .. })));
        assert!(matches!(events[1], Event::Comm(CommEvent { bytes: 1, .. })));
        assert_eq!(t.metrics().counter("steps").get(), 5);
        assert_eq!(t.metrics().histogram("comm.bytes.Ack.down").count(), 1);
    }

    #[test]
    fn phase_events_carry_increasing_seq() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let t = init("phases");
        drop(phase("encode"));
        drop(phase("sample"));
        shutdown();
        let phases: Vec<_> = t
            .events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Phase(p) => Some((p.phase, p.seq)),
                _ => None,
            })
            .collect();
        assert_eq!(phases, vec![("encode", 0), ("sample", 1)]);
    }
}
