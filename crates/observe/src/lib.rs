//! Spans, metrics, scopes, tracing, and run telemetry for the SiloFuse
//! stack.
//!
//! Everything routes through one process-global [`TelemetryHub`] behind
//! an `AtomicBool` fast path: until [`init`] is called, every
//! instrumentation entry point ([`span`], [`comm`], [`train_epoch`], ...)
//! is a single relaxed atomic load and an immediate return, so
//! instrumented code pays nothing when tracing is off.
//!
//! The hub holds one [`Telemetry`] store per logical actor
//! (`coordinator`, `silo0`, ...). A thread pins itself to an actor with
//! [`scope`]; everything it records while the guard lives — spans,
//! counters, events, Lamport ticks — is attributed to that actor, while
//! unpinned threads fall back to the hub's default scope, preserving the
//! old single-store behavior for existing call sites.
//!
//! The pieces:
//! - [`spans`] — scoped RAII wall-clock timers that nest into a span tree
//!   (per-path call counts, total/mean/max), thread-aware via a
//!   thread-local span stack.
//! - [`metrics`] — a registry of counters, gauges, and fixed-bucket
//!   log₂ histograms with p50/p90/p99 readout.
//! - [`events`] — the [`TelemetrySink`] trait plus the concrete
//!   train/comm/wire/phase event types; sink methods default to no-ops.
//! - [`scope`] — the per-actor [`TelemetryHub`] and the RAII
//!   actor-context guard.
//! - [`trace`] — the wire-level [`TraceContext`] (Lamport clocks, no
//!   wall time in the ordering path), the causally-merged cross-silo
//!   trace, and the critical-path report.
//! - [`expose`] — Prometheus text-format snapshots plus a periodic
//!   atomic-rename [`expose::Flusher`] for live exposition.
//! - [`export`] — a hand-rolled JSONL exporter writing
//!   `target/experiments/telemetry/<run>.jsonl` and the human-readable
//!   span-tree renderer.

pub mod events;
pub mod export;
pub mod expose;
pub mod metrics;
pub mod scope;
pub mod spans;
pub mod trace;

/// Canonical metric and span names emitted by the transport fault layer,
/// so producers (`silofuse-distributed`) and consumers (bench reports,
/// tests) cannot drift apart on spelling.
pub mod names {
    /// Counter: transmissions silently dropped by the fault injector.
    pub const FAULT_DROP: &str = "fault.drop";
    /// Counter: transmissions delivered twice by the fault injector.
    pub const FAULT_DUPLICATE: &str = "fault.duplicate";
    /// Counter: transmissions delayed by the fault injector.
    pub const FAULT_DELAY: &str = "fault.delay";
    /// Counter: links killed by a scripted disconnect.
    pub const FAULT_DISCONNECT: &str = "fault.disconnect";
    /// Span wrapping each fault-injection decision on the send path.
    pub const FAULT_INJECT_SPAN: &str = "fault-inject";
    /// Counter: data frames retransmitted by the reliability layer.
    pub const TRANSPORT_RETRANSMIT: &str = "transport.retransmit";
    /// Counter: bounded receives that expired without a frame.
    pub const TRANSPORT_TIMEOUT: &str = "transport.timeout";
    /// Counter: replayed frames discarded by the dedup window.
    pub const TRANSPORT_DUPLICATE: &str = "transport.duplicate_dropped";
    /// Counter: out-of-order frames dropped beyond the reorder window
    /// (recovered later by sender retransmission).
    pub const TRANSPORT_REORDER_DROP: &str = "transport.reorder_dropped";
    /// Counter: checkpoints written by `silofuse-checkpoint`.
    pub const CHECKPOINT_WRITES: &str = "checkpoint.writes";
    /// Counter: checkpoints loaded for resume.
    pub const CHECKPOINT_LOADS: &str = "checkpoint.loads";
    /// Counter: total checkpoint bytes written.
    pub const CHECKPOINT_BYTES: &str = "checkpoint.bytes_written";
    /// Counter: injected process crashes fired.
    pub const CHECKPOINT_CRASH: &str = "checkpoint.crash_injected";
    /// Span wrapping each atomic checkpoint write.
    pub const CHECKPOINT_WRITE_SPAN: &str = "checkpoint.write";
    /// Span wrapping each checkpoint load + verification.
    pub const CHECKPOINT_LOAD_SPAN: &str = "checkpoint.load";
    /// Counter: stale `.tmp` files swept at checkpointer startup (debris
    /// of a crash mid-atomic-write).
    pub const CHECKPOINT_TMP_SWEPT: &str = "checkpoint.tmp_swept";
    /// Counter: synthesis jobs admitted by the serve layer.
    pub const SERVE_JOBS: &str = "serve.jobs";
    /// Counter: synthesis jobs rejected at admission (overload/quota).
    pub const SERVE_REJECTED: &str = "serve.rejected";
    /// Counter: synthetic rows served, recorded in each tenant's scope.
    pub const SERVE_ROWS: &str = "serve.rows_served";
    /// Gauge: jobs currently synthesizing across all tenants.
    pub const SERVE_IN_FLIGHT: &str = "serve.in_flight";
    /// Gauge: requests waiting at the admission gate right now.
    pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Span wrapping one admitted synthesis job end to end.
    pub const SERVE_JOB_SPAN: &str = "serve.job";
    /// Counter: synthetic latent rows produced by the batched sampler.
    pub const SYNTH_ROWS: &str = "synth.rows";
    /// Counter: latent chunks streamed by the batched sampler.
    pub const SYNTH_CHUNKS: &str = "synth.chunks";
    /// Span wrapping one streamed chunk of batched reverse diffusion.
    pub const SYNTH_CHUNK_SPAN: &str = "synth.chunk";
    /// Span wrapping every blocking transport receive; the per-actor
    /// comm-wait-vs-compute breakdown in `trace-report` sums these.
    pub const COMM_WAIT_SPAN: &str = "comm-wait";
    /// Counter: transmissions swallowed by an active link partition.
    pub const FAULT_PARTITION: &str = "fault.partition";
    /// Gauge: silos currently Healthy in the membership table.
    pub const MEMBERSHIP_HEALTHY: &str = "membership.healthy";
    /// Gauge: silos currently Suspected (missed heartbeats, not yet dead).
    pub const MEMBERSHIP_SUSPECTED: &str = "membership.suspected";
    /// Gauge: silos currently Dead (retry budget exhausted).
    pub const MEMBERSHIP_DEAD: &str = "membership.dead";
    /// Gauge: silos that died and later rejoined the run.
    pub const MEMBERSHIP_REJOINED: &str = "membership.rejoined";
    /// Counter: heartbeats absorbed by the coordinator.
    pub const SUPERVISION_HEARTBEATS: &str = "supervision.heartbeats";
    /// Counter: heartbeat misses observed by the failure detector.
    pub const SUPERVISION_MISSES: &str = "supervision.misses";
    /// Counter: degradation events (a silo declared dead while the run
    /// continued under quorum/best-effort).
    pub const SUPERVISION_DEGRADED: &str = "supervision.degraded";
    /// Counter: silos that completed the rejoin handshake mid-run.
    pub const SUPERVISION_REJOINS: &str = "supervision.rejoins";
}

pub use events::{
    CommEvent, Direction, Event, NoopSink, PhaseEvent, TelemetrySink, TrainEvent, WireEvent, WireOp,
};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use scope::{ScopeGuard, TelemetryHub};
pub use spans::{fmt_duration, SpanGuard, SpanRow, SpanStat};
pub use trace::{TraceContext, TraceReport};

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<RwLock<Option<Arc<TelemetryHub>>>> = OnceLock::new();

fn slot() -> &'static RwLock<Option<Arc<TelemetryHub>>> {
    GLOBAL.get_or_init(|| RwLock::new(None))
}

/// Installs a fresh [`TelemetryHub`] named `run` and enables
/// instrumentation, returning the hub's default scope (the store that
/// unpinned threads record into).
///
/// Replaces any previously installed hub (its data is dropped unless
/// another `Arc` to it is held), so tests can re-init freely.
pub fn init(run: &str) -> Arc<Telemetry> {
    init_scoped(run, scope::DEFAULT_ACTOR).default_scope()
}

/// Like [`init`], but names the default scope `default_actor` (e.g.
/// `"bench"` or `"cli"`) and returns the whole hub.
pub fn init_scoped(run: &str, default_actor: &str) -> Arc<TelemetryHub> {
    let hub = Arc::new(TelemetryHub::new(run, default_actor));
    *slot().write().unwrap_or_else(|e| e.into_inner()) = Some(hub.clone());
    ENABLED.store(true, Ordering::SeqCst);
    hub
}

/// Disables instrumentation and drops the installed hub.
pub fn shutdown() {
    ENABLED.store(false, Ordering::SeqCst);
    *slot().write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Whether instrumentation is currently live. One relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed hub, if tracing is enabled.
pub fn hub() -> Option<Arc<TelemetryHub>> {
    if !enabled() {
        return None;
    }
    slot().read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// The telemetry store the current thread records into: the innermost
/// [`scope`] guard's actor if one is active, else the hub's default
/// scope. `None` when tracing is off.
pub fn handle() -> Option<Arc<Telemetry>> {
    if !enabled() {
        return None;
    }
    if let Some(scoped) = scope::current_scope() {
        return Some(scoped);
    }
    slot().read().unwrap_or_else(|e| e.into_inner()).as_ref().map(|hub| hub.default_scope())
}

/// Pins the current thread to `actor`'s telemetry scope until the guard
/// drops; see [`scope::enter`]. Inert when tracing is off.
pub fn scope(actor: &str) -> ScopeGuard {
    scope::enter(actor)
}

/// Opens a scoped span timer; see [`spans::span`].
#[inline]
pub fn span(name: &str) -> SpanGuard {
    spans::span(name)
}

/// Opens a pipeline-phase span: emits a [`PhaseEvent`] with a per-scope
/// sequence number, then behaves exactly like [`span`].
pub fn phase(name: &'static str) -> SpanGuard {
    if let Some(t) = handle() {
        let event = PhaseEvent { phase: name, seq: t.next_phase_seq() };
        TelemetrySink::phase(&*t, &event);
    }
    spans::span(name)
}

/// Emits a per-epoch training event; no-op when tracing is off.
pub fn train_epoch(model: &'static str, epoch: u64, loss: f64, lr: f64, rows: u64) {
    if let Some(t) = handle() {
        t.train(&TrainEvent::Epoch { model, epoch, loss, lr, rows });
    }
}

/// Emits a communication event and feeds the per-message-kind byte
/// histogram `comm.bytes.<kind>.<up|down>`; no-op when tracing is off.
pub fn comm(direction: Direction, msg_kind: &'static str, bytes: u64) {
    if let Some(t) = handle() {
        t.comm(&CommEvent { direction, msg_kind, bytes });
    }
}

/// Records a traced payload crossing a link (timestamp stamped by the
/// sink); no-op when tracing is off.
pub fn wire(event: WireEvent) {
    if let Some(t) = handle() {
        t.wire(&event);
    }
}

/// Adds `n` to the named counter; no-op when tracing is off.
pub fn count(name: &str, n: u64) {
    if let Some(t) = handle() {
        t.metrics().counter(name).add(n);
    }
}

/// Sets the named gauge; no-op when tracing is off.
pub fn gauge(name: &str, value: f64) {
    if let Some(t) = handle() {
        t.metrics().gauge(name).set(value);
    }
}

/// Records `value` into the named histogram; no-op when tracing is off.
pub fn record(name: &str, value: f64) {
    if let Some(t) = handle() {
        t.metrics().histogram(name).observe(value);
    }
}

/// Event-throttling stride: emit roughly 32 epoch events over `steps`
/// training steps (always including step 0).
pub fn epoch_stride(steps: usize) -> usize {
    (steps / 32).max(1)
}

/// The concrete telemetry store for one actor scope: span tree, metrics
/// registry, Lamport clock, and the recorded event log. Implements
/// [`TelemetrySink`] by recording.
pub struct Telemetry {
    run: String,
    actor: String,
    epoch: Instant,
    lamport: AtomicU64,
    spans: Mutex<HashMap<String, SpanEntry>>,
    span_order: AtomicU64,
    metrics: Registry,
    events: Mutex<Vec<Event>>,
    phase_seq: AtomicU64,
}

#[derive(Debug, Clone, Copy)]
struct SpanEntry {
    stat: SpanStat,
    order: u64,
}

impl Telemetry {
    /// A fresh, empty store for run `run` under the default actor name.
    pub fn new(run: &str) -> Self {
        Self::with_epoch(run, scope::DEFAULT_ACTOR, Instant::now())
    }

    /// A fresh store attributed to `actor`, with timestamps measured
    /// from `epoch` (shared across a hub's scopes so they compare).
    pub(crate) fn with_epoch(run: &str, actor: &str, epoch: Instant) -> Self {
        Self {
            run: run.to_string(),
            actor: actor.to_string(),
            epoch,
            lamport: AtomicU64::new(0),
            spans: Mutex::new(HashMap::new()),
            span_order: AtomicU64::new(0),
            metrics: Registry::new(),
            events: Mutex::new(Vec::new()),
            phase_seq: AtomicU64::new(0),
        }
    }

    /// The run name this telemetry was installed under.
    pub fn run(&self) -> &str {
        &self.run
    }

    /// The actor this scope is attributed to.
    pub fn actor(&self) -> &str {
        &self.actor
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Snapshot of every recorded event, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Current Lamport time (0 until the first tick or merge).
    pub fn lamport(&self) -> u64 {
        self.lamport.load(Ordering::Relaxed)
    }

    /// Advances the Lamport clock for a local send and returns the new
    /// time.
    pub fn tick_lamport(&self) -> u64 {
        self.lamport.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Merges a Lamport time seen on the wire: the clock becomes
    /// `max(local, seen) + 1`. Returns the new local time.
    pub fn merge_lamport(&self, seen: u64) -> u64 {
        let mut current = self.lamport.load(Ordering::Relaxed);
        loop {
            let next = current.max(seen) + 1;
            match self.lamport.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return next,
                Err(actual) => current = actual,
            }
        }
    }

    /// Nanoseconds elapsed since this scope's epoch, saturating at
    /// `u64::MAX` (585 years — effectively never).
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn next_phase_seq(&self) -> u64 {
        self.phase_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Folds one timed call into the span tree under `path`
    /// (`"/"`-separated). Called by [`SpanGuard`] on drop.
    pub fn record_span(&self, path: &str, elapsed: Duration) {
        let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        let entry = spans.entry(path.to_string()).or_insert_with(|| SpanEntry {
            stat: SpanStat::default(),
            order: self.span_order.fetch_add(1, Ordering::Relaxed),
        });
        entry.stat.calls += 1;
        entry.stat.total += elapsed;
        entry.stat.max = entry.stat.max.max(elapsed);
    }

    /// The aggregated span tree flattened depth-first, siblings in
    /// first-recorded order. Parents that never completed themselves
    /// appear with zero calls.
    pub fn span_rows(&self) -> Vec<SpanRow> {
        let spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        spans::build_rows(spans.iter().map(|(path, e)| (path.as_str(), e.stat, e.order)))
    }

    /// Plain-text span-tree summary (indented, aligned columns).
    pub fn render_span_tree(&self) -> String {
        spans::render_rows(&self.span_rows())
    }
}

impl TelemetrySink for Telemetry {
    fn train(&self, event: &TrainEvent) {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).push(Event::Train(event.clone()));
    }

    fn comm(&self, event: &CommEvent) {
        let name = format!("comm.bytes.{}.{}", event.msg_kind, event.direction.as_str());
        self.metrics.histogram(&name).observe(event.bytes as f64);
        self.events.lock().unwrap_or_else(|e| e.into_inner()).push(Event::Comm(event.clone()));
    }

    fn wire(&self, event: &WireEvent) {
        let mut stamped = event.clone();
        stamped.at_nanos = self.elapsed_nanos();
        self.events.lock().unwrap_or_else(|e| e.into_inner()).push(Event::Wire(stamped));
    }

    fn phase(&self, event: &PhaseEvent) {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).push(Event::Phase(event.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global telemetry slot is process-wide; serialize the tests
    // that install into it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_instrumentation_is_inert() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        shutdown();
        assert!(!enabled());
        assert!(handle().is_none());
        assert!(hub().is_none());
        let g = span("never-recorded");
        assert!(!g.is_active());
        drop(g);
        let s = scope("coordinator");
        assert!(!s.is_active());
        drop(s);
        train_epoch("ae", 0, 1.0, 1e-3, 64);
        comm(Direction::Up, "LatentUpload", 128);
        count("c", 1);
        assert!(trace::ctx_for_send().is_none());
    }

    #[test]
    fn init_records_spans_events_and_metrics() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let t = init("unit");
        {
            let _outer = span("outer");
            let _inner = span("inner");
            std::thread::sleep(Duration::from_millis(1));
        }
        train_epoch("ae", 3, 0.5, 1e-3, 64);
        comm(Direction::Down, "Ack", 1);
        count("steps", 2);
        count("steps", 3);
        shutdown();

        assert_eq!(t.run(), "unit");
        assert_eq!(t.actor(), scope::DEFAULT_ACTOR);
        let rows = t.span_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "outer");
        assert_eq!(rows[1].name, "inner");
        assert_eq!(rows[1].depth, 1);
        assert!(rows[0].stat.total >= rows[1].stat.total);

        let events = t.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], Event::Train(TrainEvent::Epoch { epoch: 3, .. })));
        assert!(matches!(events[1], Event::Comm(CommEvent { bytes: 1, .. })));
        assert_eq!(t.metrics().counter("steps").get(), 5);
        assert_eq!(t.metrics().histogram("comm.bytes.Ack.down").count(), 1);
    }

    #[test]
    fn phase_events_carry_increasing_seq() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let t = init("phases");
        drop(phase("encode"));
        drop(phase("sample"));
        shutdown();
        let phases: Vec<_> = t
            .events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Phase(p) => Some((p.phase, p.seq)),
                _ => None,
            })
            .collect();
        assert_eq!(phases, vec![("encode", 0), ("sample", 1)]);
    }

    #[test]
    fn scope_guard_attributes_recording_to_its_actor() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let hub = init_scoped("scoped-run", "bench");
        count("shared.metric", 1);
        {
            let _s = scope("silo0");
            count("shared.metric", 10);
            drop(span("silo-work"));
        }
        count("shared.metric", 100);
        shutdown();

        let default = hub.default_scope();
        assert_eq!(default.actor(), "bench");
        assert_eq!(default.metrics().counter("shared.metric").get(), 101);
        let silo = hub.scope("silo0");
        assert_eq!(silo.metrics().counter("shared.metric").get(), 10);
        assert_eq!(silo.span_rows().len(), 1, "span landed in the silo scope");
        assert!(default.span_rows().is_empty());
    }

    #[test]
    fn lamport_clock_ticks_and_merges_monotonically() {
        let t = Telemetry::new("lamport");
        assert_eq!(t.lamport(), 0);
        assert_eq!(t.tick_lamport(), 1);
        assert_eq!(t.merge_lamport(10), 11, "merge jumps past the seen time");
        assert_eq!(t.merge_lamport(3), 12, "stale merges still advance locally");
        assert_eq!(t.tick_lamport(), 13);
    }
}
