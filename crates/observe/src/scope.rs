//! Per-actor telemetry scopes behind the process-global hub.
//!
//! A cross-silo run has several logical actors — the coordinator, each
//! silo, the driving bench binary — that may share OS threads (the
//! stacked synthesis loop runs both halves of every link on one thread).
//! The [`TelemetryHub`] keeps one [`Telemetry`] store per actor; the
//! [`ScopeGuard`] pins a thread (RAII, nestable) to an actor so that all
//! the cheap free functions (`observe::count/span/record/...`) attribute
//! to it without any call-site changes. Threads outside any scope record
//! into the hub's default scope, which preserves the pre-scope behavior.

use crate::Telemetry;
use std::cell::RefCell;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Actor name used for the hub's default scope when none is given.
pub const DEFAULT_ACTOR: &str = "main";

/// The process-global set of per-actor telemetry scopes for one run.
///
/// Scopes are created on first use and never removed; all scopes share
/// the hub's epoch instant so their event timestamps are comparable.
pub struct TelemetryHub {
    run: String,
    trace_id: u64,
    epoch: Instant,
    scopes: Mutex<Vec<Arc<Telemetry>>>,
}

impl TelemetryHub {
    /// A fresh hub for run `run` whose default scope is `default_actor`.
    pub fn new(run: &str, default_actor: &str) -> Self {
        let epoch = Instant::now();
        let default = Arc::new(Telemetry::with_epoch(run, default_actor, epoch));
        Self {
            run: run.to_string(),
            trace_id: crate::trace::fnv1a(run.as_bytes()),
            epoch,
            scopes: Mutex::new(vec![default]),
        }
    }

    /// The run name this hub was installed under.
    pub fn run(&self) -> &str {
        &self.run
    }

    /// Run-scoped trace id: a deterministic FNV-1a hash of the run name,
    /// so fixed-seed reruns carry identical ids (no wall clock anywhere
    /// in the tracing path).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The scope threads record into when no [`ScopeGuard`] is active.
    pub fn default_scope(&self) -> Arc<Telemetry> {
        self.scopes.lock().unwrap_or_else(|e| e.into_inner())[0].clone()
    }

    /// The scope for `actor`, created empty on first request.
    pub fn scope(&self, actor: &str) -> Arc<Telemetry> {
        let mut scopes = self.scopes.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = scopes.iter().find(|s| s.actor() == actor) {
            return existing.clone();
        }
        let scope = Arc::new(Telemetry::with_epoch(&self.run, actor, self.epoch));
        scopes.push(scope.clone());
        scope
    }

    /// All scopes in creation order (default scope first).
    pub fn scopes(&self) -> Vec<Arc<Telemetry>> {
        self.scopes.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<Arc<Telemetry>>> = const { RefCell::new(Vec::new()) };
}

/// The innermost scope this thread is pinned to, if any.
pub(crate) fn current_scope() -> Option<Arc<Telemetry>> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// Pins the current thread to `actor`'s scope until the returned guard
/// drops. Nestable — the innermost guard wins — and inert when tracing
/// is off (the guard then records nothing and costs one atomic load).
///
/// The scope `Arc` is resolved once at entry, so a guard that outlives a
/// `shutdown`/`init` cycle keeps recording into the orphaned store it
/// captured rather than panicking or leaking into the new run.
pub fn enter(actor: &str) -> ScopeGuard {
    let Some(hub) = crate::hub() else {
        return ScopeGuard { active: false };
    };
    CURRENT.with(|c| c.borrow_mut().push(hub.scope(actor)));
    ScopeGuard { active: true }
}

/// RAII guard pinning the current thread to an actor scope.
#[must_use = "dropping the guard immediately exits the scope"]
pub struct ScopeGuard {
    active: bool,
}

impl ScopeGuard {
    /// Whether this guard actually entered a scope (tracing was on).
    pub fn is_active(&self) -> bool {
        self.active
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.active {
            CURRENT.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_hands_out_one_scope_per_actor() {
        let hub = TelemetryHub::new("scoped", DEFAULT_ACTOR);
        let a = hub.scope("silo0");
        let b = hub.scope("silo0");
        assert!(Arc::ptr_eq(&a, &b), "same actor, same store");
        assert_eq!(hub.scopes().len(), 2, "default + silo0");
        assert_eq!(hub.default_scope().actor(), DEFAULT_ACTOR);
    }

    #[test]
    fn trace_id_is_a_pure_function_of_the_run_name() {
        let a = TelemetryHub::new("run-a", DEFAULT_ACTOR);
        let b = TelemetryHub::new("run-a", DEFAULT_ACTOR);
        let c = TelemetryHub::new("run-b", DEFAULT_ACTOR);
        assert_eq!(a.trace_id(), b.trace_id());
        assert_ne!(a.trace_id(), c.trace_id());
    }

    #[test]
    fn inactive_guard_never_pops_the_scope_stack() {
        let hub = TelemetryHub::new("stack", DEFAULT_ACTOR);
        CURRENT.with(|c| c.borrow_mut().push(hub.scope("pinned")));
        drop(ScopeGuard { active: false });
        assert_eq!(current_scope().unwrap().actor(), "pinned");
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}
