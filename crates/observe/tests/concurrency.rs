//! Threaded correctness tests for the metrics primitives, the per-actor
//! scope machinery, and the init/shutdown lifecycle. Telemetry is
//! process-global, so tests touching the global serialise on
//! `GLOBAL_LOCK`; the pure `Registry`/`TelemetryHub` tests need no lock.

use silofuse_observe::scope::{TelemetryHub, DEFAULT_ACTOR};
use silofuse_observe::Registry;
use std::sync::{Arc, Barrier, Mutex};
use std::thread;

static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

const THREADS: usize = 8;
const OPS: u64 = 10_000;

/// Runs `work(thread_index)` on `THREADS` threads released together.
fn hammer(work: impl Fn(usize) + Sync) {
    let barrier = Barrier::new(THREADS);
    thread::scope(|s| {
        for t in 0..THREADS {
            let barrier = &barrier;
            let work = &work;
            s.spawn(move || {
                barrier.wait();
                work(t);
            });
        }
    });
}

#[test]
fn counters_and_gauges_survive_contention_without_losing_updates() {
    let registry = Registry::new();
    hammer(|t| {
        for i in 0..OPS {
            registry.counter("hits").add(1);
            registry.gauge("level").set((t as u64 * OPS + i) as f64);
        }
    });
    assert_eq!(registry.counter("hits").get(), THREADS as u64 * OPS);
    // The final gauge value is one of the written values, not a torn mix.
    let level = registry.gauge("level").get();
    assert!(level.fract() == 0.0 && level >= 0.0 && level < (THREADS as u64 * OPS) as f64);
}

#[test]
fn histogram_count_and_sum_stay_consistent_under_concurrent_writes() {
    let registry = Registry::new();
    // Every thread observes the same point mass plus a sprinkling of
    // NaN/∞ outliers; the finite ledger must come out exact.
    hammer(|_| {
        for i in 0..OPS {
            registry.histogram("lat").observe(64.0);
            if i % 1000 == 0 {
                registry.histogram("lat").observe(f64::NAN);
                registry.histogram("lat").observe(f64::INFINITY);
            }
        }
    });
    let hist = registry.histogram("lat");
    let infs = THREADS as u64 * (OPS / 1000);
    assert_eq!(hist.count(), THREADS as u64 * OPS + infs, "NaN never counted, Inf always");
    assert_eq!(hist.nan_count(), infs);
    // A point mass dominated by 64.0: every quantile must land in its
    // bucket even while the ∞ outliers sit in the top bucket.
    assert_eq!(hist.quantile(0.5), 64.0);
    assert_eq!(hist.quantile(0.9), 64.0);
}

#[test]
fn quantiles_read_under_concurrent_writes_never_panic_or_go_negative() {
    let registry = Registry::new();
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    thread::scope(|s| {
        for t in 0..4 {
            let registry = &registry;
            let done = done.clone();
            s.spawn(move || {
                let mut i = 0u64;
                while !done.load(std::sync::atomic::Ordering::Relaxed) {
                    registry.histogram("busy").observe((t * 100 + 1) as f64 + (i % 7) as f64);
                    i += 1;
                }
            });
        }
        // Torn reads between bucket increments must still yield a
        // plausible quantile (the observe() snapshot fix).
        for _ in 0..50_000 {
            let q = registry.histogram("busy").quantile(0.99);
            assert!(q >= 0.0, "quantile from torn snapshot: {q}");
        }
        done.store(true, std::sync::atomic::Ordering::Relaxed);
    });
}

#[test]
fn scoped_recording_from_many_threads_lands_in_the_right_actor() {
    let hub = TelemetryHub::new("concurrent-scopes", DEFAULT_ACTOR);
    hammer(|t| {
        // Even threads write to a shared actor, odd threads to their own.
        let actor = if t % 2 == 0 { "shared".to_string() } else { format!("solo{t}") };
        let scope = hub.scope(&actor);
        for _ in 0..OPS {
            scope.metrics().counter("ops").add(1);
        }
    });
    let shared = hub.scope("shared");
    assert_eq!(shared.metrics().counter("ops").get(), (THREADS as u64 / 2) * OPS);
    for t in (1..THREADS).step_by(2) {
        let solo = hub.scope(&format!("solo{t}"));
        assert_eq!(solo.metrics().counter("ops").get(), OPS, "solo{t}");
    }
    // One scope per actor, no duplicates minted under the race.
    let scopes = hub.scopes();
    let mut names: Vec<&str> = scopes.iter().map(|s| s.actor()).collect();
    let before = names.len();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), before, "duplicate scopes: {names:?}");
    assert_eq!(before, 2 + THREADS / 2, "default + shared + one per odd thread");
}

#[test]
fn scope_guards_nest_independently_per_thread() {
    let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let hub = silofuse_observe::init_scoped("concurrent-guards", "main");
    hammer(|t| {
        let actor = format!("worker{t}");
        for _ in 0..200 {
            let _outer = silofuse_observe::scope(&actor);
            silofuse_observe::count("outer.ops", 1);
            {
                let _inner = silofuse_observe::scope("inner");
                silofuse_observe::count("inner.ops", 1);
            }
            silofuse_observe::count("outer.ops", 1);
        }
    });
    for t in 0..THREADS {
        let scope = hub.scope(&format!("worker{t}"));
        assert_eq!(scope.metrics().counter("outer.ops").get(), 400, "worker{t}");
    }
    assert_eq!(hub.scope("inner").metrics().counter("inner.ops").get(), THREADS as u64 * 200);
    assert_eq!(hub.default_scope().metrics().counter("outer.ops").get(), 0, "nothing leaks");
    silofuse_observe::shutdown();
}

#[test]
fn init_shutdown_races_with_recording_threads_never_panic() {
    let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    thread::scope(|s| {
        for t in 0..4 {
            let stop = stop.clone();
            s.spawn(move || {
                let actor = format!("racer{t}");
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    // Guards resolved against one run may drop after
                    // shutdown or into the next run; both must be safe.
                    let _scope = silofuse_observe::scope(&actor);
                    silofuse_observe::count("race.ops", 1);
                    silofuse_observe::record("race.lat", 1.5);
                    let _span = silofuse_observe::span("race.span");
                }
            });
        }
        for i in 0..50 {
            let _ = silofuse_observe::init_scoped(&format!("race-run-{i}"), "main");
            thread::yield_now();
            silofuse_observe::shutdown();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    assert!(!silofuse_observe::enabled(), "ends shut down");
}
