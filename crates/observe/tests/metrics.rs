//! Black-box tests for the metrics registry: bucket boundaries, quantiles
//! on known distributions, and concurrency. These exercise only the public
//! API — the registry is per-instance, so no global telemetry is touched.

use silofuse_observe::metrics::{bucket_upper_bound, BUCKETS};
use silofuse_observe::Registry;
use std::sync::Arc;
use std::thread;

#[test]
fn bucket_bounds_are_powers_of_two_spanning_micro_to_tera() {
    assert_eq!(bucket_upper_bound(20), 1.0, "bucket 20 tops out at 2^0");
    assert_eq!(bucket_upper_bound(21), 2.0);
    assert_eq!(bucket_upper_bound(30), 1024.0);
    assert!(bucket_upper_bound(0) < 1e-6, "covers sub-microsecond values");
    assert!(bucket_upper_bound(BUCKETS - 1) > 4e12, "covers multi-tera values");
    for i in 1..BUCKETS {
        assert_eq!(bucket_upper_bound(i), 2.0 * bucket_upper_bound(i - 1));
    }
}

#[test]
fn observations_land_in_the_tightest_bucket() {
    let reg = Registry::new();
    let h = reg.histogram("bytes");
    // A power of two belongs to its own bucket (bounds are inclusive);
    // anything just above it spills into the next.
    h.observe(1024.0);
    h.observe(1024.1);
    h.observe(1025.0);
    let counts = h.bucket_counts();
    assert_eq!(counts[30], 1, "1024 = 2^10 sits in bucket 30 exactly");
    assert_eq!(counts[31], 2, "values just above spill to the next bucket");
    assert_eq!(counts.iter().sum::<u64>(), h.count());
}

#[test]
fn outliers_clamp_to_the_edge_buckets() {
    let reg = Registry::new();
    let h = reg.histogram("edges");
    h.observe(0.0);
    h.observe(-5.0);
    h.observe(1e-12);
    h.observe(f64::NEG_INFINITY);
    h.observe(1e30);
    h.observe(f64::INFINITY);
    let counts = h.bucket_counts();
    assert_eq!(counts[0], 4, "zero/negative/tiny/-inf all hit bucket 0");
    assert_eq!(counts[BUCKETS - 1], 2, "huge values and +inf hit the last bucket");
    assert_eq!(h.count(), 6);
}

#[test]
fn nan_observations_are_counted_separately_and_never_bucketed() {
    let reg = Registry::new();
    let h = reg.histogram("poisoned");
    for _ in 0..50 {
        h.observe(64.0);
    }
    h.observe(f64::NAN);
    h.observe(f64::NAN);
    assert_eq!(h.nan_count(), 2, "NaNs land in the dedicated tally");
    assert_eq!(h.count(), 50, "NaNs are excluded from the count");
    assert_eq!(h.sum(), 50.0 * 64.0, "NaNs never poison the running sum");
    assert_eq!(h.bucket_counts().iter().sum::<u64>(), 50);
    // Quantiles stay exact on the untouched point mass.
    for q in [0.01, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile(q), 64.0);
    }
}

#[test]
fn a_single_inf_does_not_drag_quantiles_toward_the_minimum() {
    let reg = Registry::new();
    let h = reg.histogram("spiked");
    for _ in 0..99 {
        h.observe(1024.0);
    }
    h.observe(f64::INFINITY);
    // Before the bucket_index fix, +Inf landed in bucket 0 and pulled
    // low quantiles down to the sub-microsecond bound.
    assert_eq!(h.quantile(0.01), 1024.0);
    assert_eq!(h.quantile(0.5), 1024.0);
    assert_eq!(h.quantile(1.0), bucket_upper_bound(BUCKETS - 1));
}

#[test]
fn quantiles_on_a_known_uniform_distribution() {
    let reg = Registry::new();
    let h = reg.histogram("latency");
    // 1000 observations uniform on (0, 1000]: the true p50/p90/p99 are
    // 500/900/990, and bucket quantiles must be right within a factor of 2.
    for i in 1..=1000 {
        h.observe(f64::from(i));
    }
    assert_eq!(h.count(), 1000);
    assert_eq!(h.sum(), 500_500.0, "sum is exact, not bucketed");
    assert_eq!(h.mean(), 500.5);
    for (q, exact) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
        let est = h.quantile(q);
        assert!(
            est >= exact && est < 2.0 * exact,
            "p{} estimate {est} outside [{exact}, {})",
            (q * 100.0) as u32,
            2.0 * exact
        );
    }
    assert_eq!(h.quantile(1.0), 1024.0, "max rounds up to its bucket bound");
}

#[test]
fn quantiles_on_a_point_mass_are_exact_at_the_bucket_bound() {
    let reg = Registry::new();
    let h = reg.histogram("constant");
    for _ in 0..100 {
        h.observe(64.0);
    }
    // Every quantile of a point mass at a power of two is that value.
    for q in [0.01, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(h.quantile(q), 64.0);
    }
}

#[test]
fn empty_histogram_reports_zeros() {
    let reg = Registry::new();
    let h = reg.histogram("empty");
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0.0);
    assert_eq!(h.mean(), 0.0);
    assert_eq!(h.quantile(0.99), 0.0);
}

#[test]
fn concurrent_counter_increments_are_lossless() {
    let reg = Arc::new(Registry::new());
    let threads = 8;
    let per_thread = 10_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                let c = reg.counter("steps");
                for _ in 0..per_thread {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(reg.counter("steps").get(), threads * per_thread);
}

#[test]
fn concurrent_histogram_observations_keep_count_and_sum_consistent() {
    let reg = Arc::new(Registry::new());
    let threads = 4u32;
    let per_thread = 5_000u32;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                let h = reg.histogram("concurrent");
                for i in 0..per_thread {
                    h.observe(f64::from(1 + (i % 7)));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let h = reg.histogram("concurrent");
    let n = u64::from(threads * per_thread);
    assert_eq!(h.count(), n);
    assert_eq!(h.bucket_counts().iter().sum::<u64>(), n);
    // Sum is maintained by a CAS loop, so no observation may be dropped:
    // each thread contributes sum(1..=7 cycled) exactly.
    let per_thread_sum: f64 = (0..per_thread).map(|i| f64::from(1 + (i % 7))).sum();
    assert_eq!(h.sum(), f64::from(threads) * per_thread_sum);
}

#[test]
fn registry_hands_out_shared_handles_by_name() {
    let reg = Registry::new();
    reg.counter("a").add(3);
    reg.counter("a").add(4);
    assert_eq!(reg.counter("a").get(), 7, "same name, same underlying cell");
    reg.gauge("g").set(2.5);
    assert_eq!(reg.gauge("g").get(), 2.5);
    let names: Vec<String> = reg.counters().into_iter().map(|(n, _)| n).collect();
    assert_eq!(names, vec!["a".to_string()], "snapshot is sorted and deduped");
}
