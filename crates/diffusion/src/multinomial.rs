//! Multinomial diffusion for categorical features (Hoogeboom et al.),
//! as used by the TabDDPM baseline.
//!
//! The forward process either keeps a category or resamples it uniformly:
//! `q(x_t | x_0) = Cat(ᾱ_t x_0 + (1 − ᾱ_t) / K)`. The model predicts the
//! clean one-hot `x̂_0` (via softmax logits); the training loss is the KL
//! divergence between the true posterior `q(x_{t-1} | x_t, x_0)` and the
//! model posterior `q(x_{t-1} | x_t, x̂_0)` — the paper's `M^t[v]` term in
//! Eq. (3).

use crate::schedule::NoiseSchedule;
use rand::rngs::StdRng;
use rand::Rng;

/// Multinomial diffusion over one categorical feature with `k` classes.
#[derive(Debug, Clone)]
pub struct MultinomialDiffusion {
    k: usize,
}

impl MultinomialDiffusion {
    /// Creates the process for a `k`-class feature.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one class");
        Self { k }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.k
    }

    /// Samples `x_t` given the clean code `x0` after `t + 1` noising steps.
    pub fn q_sample(&self, x0: u32, t: usize, schedule: &NoiseSchedule, rng: &mut StdRng) -> u32 {
        let ab = f64::from(schedule.alpha_bar(t));
        if rng.gen::<f64>() < ab {
            x0
        } else {
            rng.gen_range(0..self.k) as u32
        }
    }

    /// Probability vector of `q(x_t | x_0)`.
    pub fn q_probs(&self, x0: u32, t: usize, schedule: &NoiseSchedule) -> Vec<f64> {
        let ab = f64::from(schedule.alpha_bar(t));
        let base = (1.0 - ab) / self.k as f64;
        let mut p = vec![base; self.k];
        p[x0 as usize] += ab;
        p
    }

    /// Unnormalised posterior `q(x_{t-1} | x_t, x_0)` where `x0_probs` may be
    /// a soft (model-predicted) distribution. Returns the normalised
    /// probability vector.
    ///
    /// Derivation: `q(x_{t-1}|x_t, x0) ∝ q(x_t|x_{t-1}) q(x_{t-1}|x0)` with
    /// `q(x_t|x_{t-1}) = Cat(α_t x_{t-1} + (1-α_t)/K)` and
    /// `q(x_{t-1}|x0) = Cat(ᾱ_{t-1} x0 + (1-ᾱ_{t-1})/K)`.
    pub fn posterior(
        &self,
        x_t: u32,
        x0_probs: &[f64],
        t: usize,
        schedule: &NoiseSchedule,
    ) -> Vec<f64> {
        debug_assert_eq!(x0_probs.len(), self.k);
        let alpha = f64::from(schedule.alpha(t));
        let ab_prev = f64::from(schedule.alpha_bar_prev(t));
        let k = self.k as f64;
        let mut u = vec![0.0f64; self.k];
        let mut total = 0.0;
        for j in 0..self.k {
            // likelihood that x_{t-1} = j transitions to the observed x_t
            let like = if j as u32 == x_t { alpha + (1.0 - alpha) / k } else { (1.0 - alpha) / k };
            // prior of x_{t-1} = j under (soft) x0
            let prior = ab_prev * x0_probs[j] + (1.0 - ab_prev) / k;
            u[j] = like * prior;
            total += u[j];
        }
        for v in &mut u {
            *v /= total.max(1e-300);
        }
        u
    }

    /// KL training loss and its gradient with respect to the model's `x̂_0`
    /// *logits* for one sample.
    ///
    /// `KL(q(x_{t-1}|x_t, x_0) ‖ q(x_{t-1}|x_t, x̂_0))`, with `x̂_0 =
    /// softmax(logits)`. At `t = 0` the loss degenerates to the negative
    /// log-likelihood `-log x̂_0[x_0]` (Hoogeboom's `L_0` term).
    pub fn kl_loss_and_grad(
        &self,
        x0: u32,
        x_t: u32,
        t: usize,
        logits: &[f32],
        schedule: &NoiseSchedule,
    ) -> (f64, Vec<f32>) {
        debug_assert_eq!(logits.len(), self.k);
        let x0_hat = softmax64(logits);

        if t == 0 {
            // L_0: categorical NLL of the clean class.
            let p = x0_hat[x0 as usize].max(1e-12);
            let loss = -p.ln();
            let grad: Vec<f32> = x0_hat
                .iter()
                .enumerate()
                .map(|(j, &pj)| (pj - f64::from(u8::from(j == x0 as usize))) as f32)
                .collect();
            return (loss, grad);
        }

        let q_true = self.posterior(x_t, &one_hot64(x0, self.k), t, schedule);
        // Model posterior uses unnormalised weights u_j = c_j * prior(x̂0)_j.
        let alpha = f64::from(schedule.alpha(t));
        let ab_prev = f64::from(schedule.alpha_bar_prev(t));
        let k = self.k as f64;
        let c: Vec<f64> = (0..self.k)
            .map(|j| if j as u32 == x_t { alpha + (1.0 - alpha) / k } else { (1.0 - alpha) / k })
            .collect();
        let u: Vec<f64> =
            (0..self.k).map(|j| c[j] * (ab_prev * x0_hat[j] + (1.0 - ab_prev) / k)).collect();
        let total: f64 = u.iter().sum();

        // KL = Σ q log q − Σ q log u + log Σ u
        let mut loss = total.max(1e-300).ln();
        for j in 0..self.k {
            if q_true[j] > 0.0 {
                loss += q_true[j] * (q_true[j].max(1e-300).ln() - u[j].max(1e-300).ln());
            }
        }

        // dKL/dx̂0_m = (1/Σu − q_m/u_m) * c_m * ᾱ_{t-1}
        let dkl_dx0: Vec<f64> = (0..self.k)
            .map(|m| (1.0 / total.max(1e-300) - q_true[m] / u[m].max(1e-300)) * c[m] * ab_prev)
            .collect();
        // Chain through softmax: dL/dlogit_i = x̂0_i (dkl_i − Σ_j dkl_j x̂0_j)
        let dot: f64 = dkl_dx0.iter().zip(&x0_hat).map(|(d, p)| d * p).sum();
        let grad: Vec<f32> = (0..self.k).map(|i| (x0_hat[i] * (dkl_dx0[i] - dot)) as f32).collect();
        (loss, grad)
    }

    /// Posterior `q(x_s | x_t, x_0)` for an arbitrary earlier step `s < t`
    /// (used for strided/few-step inference). The jump transition
    /// `q(x_t | x_s)` keeps the class with probability `ᾱ_t / ᾱ_s`.
    pub fn posterior_between(
        &self,
        x_t: u32,
        x0_probs: &[f64],
        t: usize,
        s: usize,
        schedule: &NoiseSchedule,
    ) -> Vec<f64> {
        debug_assert!(s < t, "posterior_between requires s < t");
        let ab_t = f64::from(schedule.alpha_bar(t));
        let ab_s = f64::from(schedule.alpha_bar(s));
        let alpha_eff = (ab_t / ab_s).clamp(0.0, 1.0);
        let k = self.k as f64;
        let mut u = vec![0.0f64; self.k];
        let mut total = 0.0;
        for j in 0..self.k {
            let like = if j as u32 == x_t {
                alpha_eff + (1.0 - alpha_eff) / k
            } else {
                (1.0 - alpha_eff) / k
            };
            let prior = ab_s * x0_probs[j] + (1.0 - ab_s) / k;
            u[j] = like * prior;
            total += u[j];
        }
        for v in &mut u {
            *v /= total.max(1e-300);
        }
        u
    }

    /// Samples `x_s` from the strided model posterior given `x̂_0` logits.
    pub fn p_sample_between(
        &self,
        x_t: u32,
        t: usize,
        s: usize,
        logits: &[f32],
        schedule: &NoiseSchedule,
        rng: &mut StdRng,
    ) -> u32 {
        let x0_hat = softmax64(logits);
        let post = self.posterior_between(x_t, &x0_hat, t, s, schedule);
        sample_categorical(&post, rng)
    }

    /// Samples `x_{t-1}` from the model posterior given logits for `x̂_0`.
    pub fn p_sample(
        &self,
        x_t: u32,
        t: usize,
        logits: &[f32],
        schedule: &NoiseSchedule,
        rng: &mut StdRng,
    ) -> u32 {
        let x0_hat = softmax64(logits);
        if t == 0 {
            return sample_categorical(&x0_hat, rng);
        }
        let post = self.posterior(x_t, &x0_hat, t, schedule);
        sample_categorical(&post, rng)
    }

    /// Uniform categorical sample — the `t = T` prior of the process.
    pub fn sample_prior(&self, rng: &mut StdRng) -> u32 {
        rng.gen_range(0..self.k) as u32
    }
}

fn softmax64(logits: &[f32]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f64> = logits.iter().map(|&v| f64::from(v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

fn one_hot64(code: u32, k: usize) -> Vec<f64> {
    let mut v = vec![0.0; k];
    v[code as usize] = 1.0;
    v
}

/// Samples an index from a probability vector.
pub fn sample_categorical(probs: &[f64], rng: &mut StdRng) -> u32 {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i as u32;
        }
    }
    (probs.len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleKind;
    use rand::SeedableRng;

    fn sched(t: usize) -> NoiseSchedule {
        NoiseSchedule::new(ScheduleKind::Linear, t)
    }

    #[test]
    fn q_probs_sum_to_one_and_favour_x0_early() {
        let m = MultinomialDiffusion::new(5);
        let s = sched(100);
        let p = m.q_probs(2, 0, &s);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > 0.99);
        let p_late = m.q_probs(2, 99, &s);
        // Late in the process the distribution approaches uniform.
        assert!(p_late[2] < 0.6);
    }

    #[test]
    fn posterior_is_a_distribution() {
        let m = MultinomialDiffusion::new(4);
        let s = sched(50);
        let post = m.posterior(1, &[0.1, 0.2, 0.3, 0.4], 25, &s);
        assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(post.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn posterior_with_true_x0_prefers_x0_early_in_the_process() {
        let m = MultinomialDiffusion::new(3);
        let s = sched(100);
        // Early (t small): ᾱ_{t-1} ~ 1, so all posterior mass sits on the
        // clean class and the observed class; unrelated classes get nothing.
        let post = m.posterior(2, &[1.0, 0.0, 0.0], 1, &s);
        assert!(post[1] < 1e-4, "posterior {post:?}");
        assert!(post[0] + post[2] > 0.999, "posterior {post:?}");
        // And when x_t agrees with x0 the posterior is nearly certain.
        let agree = m.posterior(0, &[1.0, 0.0, 0.0], 1, &s);
        assert!(agree[0] > 0.99, "posterior {agree:?}");
    }

    #[test]
    fn kl_zero_when_model_predicts_truth() {
        let m = MultinomialDiffusion::new(3);
        let s = sched(50);
        // Logits strongly favouring the true class.
        let logits = [20.0f32, -20.0, -20.0];
        let (loss, grad) = m.kl_loss_and_grad(0, 1, 25, &logits, &s);
        assert!(loss < 1e-3, "loss {loss}");
        // Gradient should be tiny at the optimum.
        assert!(grad.iter().all(|g| g.abs() < 1e-2));
    }

    #[test]
    fn kl_positive_when_model_is_wrong() {
        let m = MultinomialDiffusion::new(3);
        let s = sched(50);
        let wrong = [-20.0f32, 20.0, -20.0];
        let right = [20.0f32, -20.0, -20.0];
        let (l_wrong, _) = m.kl_loss_and_grad(0, 0, 25, &wrong, &s);
        let (l_right, _) = m.kl_loss_and_grad(0, 0, 25, &right, &s);
        assert!(l_wrong > l_right);
    }

    #[test]
    fn kl_grad_matches_finite_difference() {
        let m = MultinomialDiffusion::new(4);
        let s = sched(40);
        let logits = [0.3f32, -0.5, 0.8, 0.1];
        for (x0, xt, t) in [(0u32, 2u32, 10usize), (3, 3, 30), (1, 0, 0)] {
            let (_, grad) = m.kl_loss_and_grad(x0, xt, t, &logits, &s);
            let eps = 1e-3f32;
            for i in 0..4 {
                let mut lp = logits;
                lp[i] += eps;
                let mut lm = logits;
                lm[i] -= eps;
                let (fp, _) = m.kl_loss_and_grad(x0, xt, t, &lp, &s);
                let (fm, _) = m.kl_loss_and_grad(x0, xt, t, &lm, &s);
                let numeric = ((fp - fm) / (2.0 * f64::from(eps))) as f32;
                assert!(
                    (numeric - grad[i]).abs() < 1e-3,
                    "t={t} grad mismatch at {i}: {numeric} vs {}",
                    grad[i]
                );
            }
        }
    }

    #[test]
    fn q_sample_keeps_class_early_randomises_late() {
        let m = MultinomialDiffusion::new(10);
        let s = sched(200);
        let mut rng = StdRng::seed_from_u64(0);
        let early_same = (0..1000).filter(|_| m.q_sample(7, 0, &s, &mut rng) == 7).count();
        assert!(early_same > 990);
        let late_same = (0..1000).filter(|_| m.q_sample(7, 199, &s, &mut rng) == 7).count();
        // ᾱ_T ~ 0.13 -> P(same) ~ 0.13 + 0.87/10 ~ 0.22.
        assert!(late_same < 400, "late_same {late_same}");
    }

    #[test]
    fn posterior_between_agrees_with_adjacent_posterior() {
        let m = MultinomialDiffusion::new(5);
        let s = sched(60);
        let x0 = [0.1, 0.3, 0.2, 0.25, 0.15];
        for t in [5usize, 20, 59] {
            let adjacent = m.posterior(2, &x0, t, &s);
            let between = m.posterior_between(2, &x0, t, t - 1, &s);
            for (a, b) in adjacent.iter().zip(&between) {
                assert!((a - b).abs() < 1e-6, "t={t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn sample_categorical_respects_probabilities() {
        let mut rng = StdRng::seed_from_u64(1);
        let probs = [0.7, 0.2, 0.1];
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[sample_categorical(&probs, &mut rng) as usize] += 1;
        }
        assert!((counts[0] as f64 / 5000.0 - 0.7).abs() < 0.03);
    }
}
