//! Variance (beta) schedules for DDPMs.

/// The supported beta schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// Linear interpolation from `1e-4` to `0.02` (Ho et al.).
    Linear,
    /// Nichol & Dhariwal cosine schedule (better for few timesteps).
    Cosine,
}

/// Precomputed schedule constants for `T` diffusion steps.
///
/// Indexing convention: array index `t` in `0..T` describes the transition
/// producing `x_{t+1}` from `x_t` in the paper's 1-based notation, i.e.
/// `alpha_bar(t)` is the paper's `ᾱ^{t+1}` — the total signal retention
/// after `t + 1` noising steps.
#[derive(Debug, Clone)]
pub struct NoiseSchedule {
    betas: Vec<f32>,
    alphas: Vec<f32>,
    alpha_bars: Vec<f32>,
}

impl NoiseSchedule {
    /// Builds a schedule with `timesteps` steps.
    ///
    /// # Panics
    /// Panics if `timesteps` is zero.
    pub fn new(kind: ScheduleKind, timesteps: usize) -> Self {
        assert!(timesteps >= 1, "schedule needs at least one timestep");
        let betas: Vec<f32> = match kind {
            ScheduleKind::Linear => {
                let (lo, hi) = (1e-4f64, 0.02f64);
                (0..timesteps)
                    .map(|t| {
                        let frac =
                            if timesteps == 1 { 0.0 } else { t as f64 / (timesteps - 1) as f64 };
                        (lo + (hi - lo) * frac) as f32
                    })
                    .collect()
            }
            ScheduleKind::Cosine => {
                let s = 0.008f64;
                let f = |t: f64| {
                    let x = (t / timesteps as f64 + s) / (1.0 + s) * std::f64::consts::FRAC_PI_2;
                    x.cos().powi(2)
                };
                let f0 = f(0.0);
                let mut alpha_bars = Vec::with_capacity(timesteps + 1);
                for t in 0..=timesteps {
                    alpha_bars.push(f(t as f64) / f0);
                }
                (0..timesteps)
                    .map(|t| {
                        let beta = 1.0 - alpha_bars[t + 1] / alpha_bars[t];
                        beta.clamp(1e-6, 0.999) as f32
                    })
                    .collect()
            }
        };
        let alphas: Vec<f32> = betas.iter().map(|&b| 1.0 - b).collect();
        let mut alpha_bars = Vec::with_capacity(timesteps);
        let mut acc = 1.0f64;
        for &a in &alphas {
            acc *= f64::from(a);
            alpha_bars.push(acc as f32);
        }
        Self { betas, alphas, alpha_bars }
    }

    /// Number of timesteps `T`.
    pub fn timesteps(&self) -> usize {
        self.betas.len()
    }

    /// `β` at step index `t`.
    pub fn beta(&self, t: usize) -> f32 {
        self.betas[t]
    }

    /// `α = 1 - β` at step index `t`.
    pub fn alpha(&self, t: usize) -> f32 {
        self.alphas[t]
    }

    /// `ᾱ` after `t + 1` noising steps.
    pub fn alpha_bar(&self, t: usize) -> f32 {
        self.alpha_bars[t]
    }

    /// `ᾱ` before step `t` (i.e. `alpha_bar(t - 1)`, or 1 at `t = 0`).
    pub fn alpha_bar_prev(&self, t: usize) -> f32 {
        if t == 0 {
            1.0
        } else {
            self.alpha_bars[t - 1]
        }
    }

    /// Posterior variance of `q(x_{t-1} | x_t, x_0)`:
    /// `β * (1 - ᾱ_{t-1}) / (1 - ᾱ_t)`.
    pub fn posterior_variance(&self, t: usize) -> f32 {
        let ab = self.alpha_bar(t);
        let ab_prev = self.alpha_bar_prev(t);
        (self.beta(t) * (1.0 - ab_prev) / (1.0 - ab)).max(0.0)
    }

    /// Evenly strided sub-schedule indices for fast inference: `count`
    /// indices in `0..T`, descending, always including the final step and
    /// terminating at `t = 0` (visited exactly once, no repeats).
    ///
    /// # Panics
    /// Panics if `count` is zero or exceeds `T`; use
    /// [`NoiseSchedule::try_inference_steps`] for a typed error instead.
    pub fn inference_steps(&self, count: usize) -> Vec<usize> {
        self.try_inference_steps(count).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`NoiseSchedule::inference_steps`]: rejects
    /// `count == 0` and `count > T` with a typed error instead of a panic.
    ///
    /// # Errors
    /// [`InvalidInferenceSteps`] when the requested count cannot form a
    /// valid sub-schedule.
    pub fn try_inference_steps(&self, count: usize) -> Result<Vec<usize>, InvalidInferenceSteps> {
        let t = self.timesteps();
        if count == 0 || count > t {
            return Err(InvalidInferenceSteps { requested: count, timesteps: t });
        }
        // `i * T / count` for i in 0..count is strictly increasing when
        // `T >= count` (consecutive values differ by at least T/count >= 1),
        // starts at 0, and never reaches T-1 unless count == T — so after
        // appending the final step the reversed schedule runs T-1 .. 0 with
        // no duplicates and exactly one visit to t = 0.
        let mut steps: Vec<usize> = (0..count).map(|i| i * t / count).collect();
        if *steps.last().unwrap() != t - 1 {
            steps.push(t - 1);
        }
        steps.reverse();
        Ok(steps)
    }
}

/// Rejected inference-step request: the strided sub-schedule needs
/// `1 <= requested <= T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidInferenceSteps {
    /// The step count the caller asked for.
    pub requested: usize,
    /// The schedule's total timestep count `T`.
    pub timesteps: usize,
}

impl std::fmt::Display for InvalidInferenceSteps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid inference step count {}: must be in 1..={}",
            self.requested, self.timesteps
        )
    }
}

impl std::error::Error for InvalidInferenceSteps {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_schedule_endpoints() {
        let s = NoiseSchedule::new(ScheduleKind::Linear, 200);
        assert!((s.beta(0) - 1e-4).abs() < 1e-6);
        assert!((s.beta(199) - 0.02).abs() < 1e-6);
    }

    #[test]
    fn alpha_bar_is_strictly_decreasing() {
        for kind in [ScheduleKind::Linear, ScheduleKind::Cosine] {
            let s = NoiseSchedule::new(kind, 100);
            for t in 1..100 {
                assert!(s.alpha_bar(t) < s.alpha_bar(t - 1), "{kind:?} not decreasing at {t}");
            }
            assert!(s.alpha_bar(0) < 1.0 && s.alpha_bar(0) > 0.9);
        }
    }

    #[test]
    fn alpha_bar_matches_product_of_alphas() {
        let s = NoiseSchedule::new(ScheduleKind::Linear, 50);
        let mut acc = 1.0f64;
        for t in 0..50 {
            acc *= f64::from(s.alpha(t));
            assert!((s.alpha_bar(t) - acc as f32).abs() < 1e-6);
        }
    }

    #[test]
    fn cosine_betas_are_valid_probabilities() {
        let s = NoiseSchedule::new(ScheduleKind::Cosine, 200);
        for t in 0..200 {
            assert!(s.beta(t) > 0.0 && s.beta(t) < 1.0);
        }
    }

    #[test]
    fn posterior_variance_zero_at_first_step() {
        let s = NoiseSchedule::new(ScheduleKind::Linear, 10);
        assert_eq!(s.posterior_variance(0), 0.0);
        assert!(s.posterior_variance(5) > 0.0);
    }

    #[test]
    fn inference_steps_cover_range_descending() {
        let s = NoiseSchedule::new(ScheduleKind::Linear, 200);
        let steps = s.inference_steps(25);
        assert_eq!(steps[0], 199);
        assert!(steps.windows(2).all(|w| w[0] > w[1]));
        assert!(steps.len() >= 25 && steps.len() <= 26);
        let full = s.inference_steps(200);
        assert_eq!(full.len(), 200);
        assert_eq!(full[0], 199);
        assert_eq!(*full.last().unwrap(), 0);
    }

    #[test]
    fn strided_schedules_visit_zero_exactly_once_without_repeats() {
        for timesteps in [1usize, 2, 3, 7, 50, 200] {
            let s = NoiseSchedule::new(ScheduleKind::Linear, timesteps);
            for count in [1, 2, timesteps / 2, timesteps.saturating_sub(1), timesteps] {
                if count == 0 || count > timesteps {
                    continue;
                }
                let steps = s.try_inference_steps(count).unwrap();
                assert_eq!(steps[0], timesteps - 1, "T={timesteps} count={count}: {steps:?}");
                assert_eq!(*steps.last().unwrap(), 0, "T={timesteps} count={count}: {steps:?}");
                assert!(
                    steps.windows(2).all(|w| w[0] > w[1]),
                    "repeat or non-descending at T={timesteps} count={count}: {steps:?}"
                );
                assert_eq!(
                    steps.iter().filter(|&&t| t == 0).count(),
                    1,
                    "t=0 not visited exactly once at T={timesteps} count={count}: {steps:?}"
                );
            }
        }
    }

    #[test]
    fn invalid_inference_step_counts_are_typed_errors() {
        let s = NoiseSchedule::new(ScheduleKind::Linear, 20);
        let zero = s.try_inference_steps(0).unwrap_err();
        assert_eq!(zero, InvalidInferenceSteps { requested: 0, timesteps: 20 });
        let over = s.try_inference_steps(21).unwrap_err();
        assert_eq!(over, InvalidInferenceSteps { requested: 21, timesteps: 20 });
        assert!(over.to_string().contains("21") && over.to_string().contains("20"));
        assert!(s.try_inference_steps(1).is_ok() && s.try_inference_steps(20).is_ok());
    }
}
