//! The denoising neural backbone.

use rand::Rng;
use silofuse_nn::embedding::timestep_embedding;
use silofuse_nn::layers::{mlp, Layer, Mode, Sequential};
use silofuse_nn::Tensor;

/// Architecture hyperparameters for a [`DiffusionBackbone`].
#[derive(Debug, Clone, Copy)]
pub struct BackboneConfig {
    /// Width of the data the backbone denoises.
    pub data_dim: usize,
    /// Hidden layer width.
    pub hidden_dim: usize,
    /// Number of hidden layers (the paper's diffusion backbone uses 8
    /// GELU layers; TabDDPM's MLP uses 6 layers of width 256).
    pub depth: usize,
    /// Sinusoidal time-embedding width (must be even).
    pub time_embed_dim: usize,
    /// Dropout probability between hidden layers (paper: 0.01).
    pub dropout: f32,
    /// Width of the backbone's output (usually `data_dim`; TabDDPM uses
    /// `n_numeric + sum(cardinalities)` logits).
    pub out_dim: usize,
}

impl BackboneConfig {
    /// The paper's §V-A diffusion backbone for latent models: 8 layers,
    /// GELU, dropout 0.01.
    pub fn paper_latent(data_dim: usize, hidden_dim: usize) -> Self {
        Self {
            data_dim,
            hidden_dim,
            depth: 8,
            time_embed_dim: 16,
            dropout: 0.01,
            out_dim: data_dim,
        }
    }

    /// TabDDPM's backbone: 6-layer MLP with hidden width 256.
    pub fn paper_tabddpm(data_dim: usize, out_dim: usize) -> Self {
        Self { data_dim, hidden_dim: 256, depth: 6, time_embed_dim: 16, dropout: 0.0, out_dim }
    }
}

/// An MLP that maps `[x_t ‖ time_embed(t)]` to a denoising prediction.
///
/// The backbone exposes a backward pass returning the gradient with respect
/// to `x_t` (the time-embedding slice is discarded), which is what the
/// end-to-end baselines propagate into the encoders.
pub struct DiffusionBackbone {
    net: Sequential,
    config: BackboneConfig,
}

impl std::fmt::Debug for DiffusionBackbone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DiffusionBackbone({:?})", self.config)
    }
}

impl DiffusionBackbone {
    /// Builds the backbone with seeded initialisation.
    pub fn new(config: BackboneConfig, seed: u64, rng: &mut impl Rng) -> Self {
        let mut dims = Vec::with_capacity(config.depth + 2);
        dims.push(config.data_dim + config.time_embed_dim);
        for _ in 0..config.depth {
            dims.push(config.hidden_dim);
        }
        dims.push(config.out_dim);
        let dropout = (config.dropout > 0.0).then_some(config.dropout);
        Self { net: mlp(&dims, dropout, seed, rng), config }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &BackboneConfig {
        &self.config
    }

    /// Predicts from noisy data `x_t` and per-row timesteps `t`.
    ///
    /// # Panics
    /// Panics if `t.len() != x_t.rows()` or `x_t.cols() != data_dim`.
    pub fn predict(&mut self, x_t: &Tensor, t: &[usize], mode: Mode) -> Tensor {
        assert_eq!(t.len(), x_t.rows(), "one timestep per row");
        assert_eq!(x_t.cols(), self.config.data_dim, "backbone data width mismatch");
        let emb = timestep_embedding(t, self.config.time_embed_dim);
        let input = Tensor::concat_cols(&[x_t, &emb]);
        self.net.forward(&input, mode)
    }

    /// Backpropagates through the latest `predict`, accumulating parameter
    /// gradients and returning `dLoss/dx_t`.
    pub fn backward_to_input(&mut self, grad_output: &Tensor) -> Tensor {
        let grad_full = self.net.backward(grad_output);
        grad_full.slice_cols(0, self.config.data_dim)
    }

    /// Accesses the underlying network for optimisation.
    pub fn net_mut(&mut self) -> &mut Sequential {
        &mut self.net
    }

    /// Total parameter count.
    pub fn param_count(&mut self) -> usize {
        self.net.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use silofuse_nn::init::randn;

    #[test]
    fn predict_shape_matches_out_dim() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = BackboneConfig {
            data_dim: 6,
            hidden_dim: 32,
            depth: 2,
            time_embed_dim: 8,
            dropout: 0.0,
            out_dim: 10,
        };
        let mut bb = DiffusionBackbone::new(cfg, 0, &mut rng);
        let x = randn(4, 6, &mut rng);
        let y = bb.predict(&x, &[0, 1, 2, 3], Mode::Infer);
        assert_eq!(y.shape(), (4, 10));
    }

    #[test]
    fn backward_returns_data_width_grad() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = BackboneConfig::paper_latent(5, 16);
        let mut bb = DiffusionBackbone::new(cfg, 1, &mut rng);
        let x = randn(3, 5, &mut rng);
        let y = bb.predict(&x, &[7, 8, 9], Mode::Train);
        let g = bb.backward_to_input(&Tensor::full(y.rows(), y.cols(), 1.0));
        assert_eq!(g.shape(), (3, 5));
        assert!(g.all_finite());
    }

    #[test]
    fn different_timesteps_change_prediction() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = BackboneConfig::paper_latent(4, 16);
        let mut bb = DiffusionBackbone::new(cfg, 2, &mut rng);
        let x = randn(1, 4, &mut rng);
        let y0 = bb.predict(&x, &[0], Mode::Infer);
        let y9 = bb.predict(&x, &[99], Mode::Infer);
        assert_ne!(y0, y9);
    }

    #[test]
    fn paper_latent_config_has_eight_hidden_layers() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = BackboneConfig::paper_latent(10, 64);
        let mut bb = DiffusionBackbone::new(cfg, 3, &mut rng);
        // depth 8 hidden layers -> 9 Linear layers; params:
        // (10+16)*64+64 + 7*(64*64+64) + 64*10+10
        let expected = (10 + 16) * 64 + 64 + 7 * (64 * 64 + 64) + 64 * 10 + 10;
        assert_eq!(bb.param_count(), expected);
    }
}
