//! Gaussian DDPM: forward noising, training, and (strided) sampling.

use crate::backbone::DiffusionBackbone;
use crate::schedule::{InvalidInferenceSteps, NoiseSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silofuse_checkpoint::{CheckpointError, Checkpointer};
use silofuse_nn::init::{randn, randn_fill};
use silofuse_nn::layers::{Layer, Mode};
use silofuse_nn::loss::mse;
use silofuse_nn::optim::{Adam, Optimizer};
use silofuse_nn::{workspace, Tensor};

/// A synthesis request asked for `chunk_rows == 0`. A zero chunk size
/// would make the streaming sampler spin forever without producing a
/// row, so it is rejected at the request boundary instead of being
/// silently clamped to 1 (which would let a bad request change chunking
/// behavior behind the caller's back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidChunkRows;

impl std::fmt::Display for InvalidChunkRows {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "synthesis chunk_rows must be at least 1")
    }
}

impl std::error::Error for InvalidChunkRows {}

/// Everything a sampling request can be rejected for before any reverse
/// diffusion runs: a bad strided-schedule length or a zero chunk size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleRequestError {
    /// `inference_steps` was zero or exceeded the schedule's `T`.
    Steps(InvalidInferenceSteps),
    /// `chunk_rows` was zero.
    ChunkRows(InvalidChunkRows),
}

impl std::fmt::Display for SampleRequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleRequestError::Steps(e) => e.fmt(f),
            SampleRequestError::ChunkRows(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SampleRequestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SampleRequestError::Steps(e) => Some(e),
            SampleRequestError::ChunkRows(e) => Some(e),
        }
    }
}

impl From<InvalidInferenceSteps> for SampleRequestError {
    fn from(e: InvalidInferenceSteps) -> Self {
        SampleRequestError::Steps(e)
    }
}

impl From<InvalidChunkRows> for SampleRequestError {
    fn from(e: InvalidChunkRows) -> Self {
        SampleRequestError::ChunkRows(e)
    }
}

/// What the backbone is trained to predict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parameterization {
    /// Predict the clean data `x_0` — the paper's Eq. (5) objective for
    /// latent diffusion (`‖Z − G(Z^t, t)‖²`).
    PredictX0,
    /// Predict the added noise `ε` — Ho et al.'s Eq. (2), used by TabDDPM.
    PredictNoise,
}

/// The pure math of a Gaussian diffusion process (no network).
#[derive(Debug, Clone)]
pub struct GaussianDiffusion {
    schedule: NoiseSchedule,
    parameterization: Parameterization,
}

impl GaussianDiffusion {
    /// Creates the process over a schedule.
    pub fn new(schedule: NoiseSchedule, parameterization: Parameterization) -> Self {
        Self { schedule, parameterization }
    }

    /// The underlying schedule.
    pub fn schedule(&self) -> &NoiseSchedule {
        &self.schedule
    }

    /// The training parameterization.
    pub fn parameterization(&self) -> Parameterization {
        self.parameterization
    }

    /// Forward process `F(x_0, t, ε)` (paper Eq. 1), with a per-row timestep:
    /// `x_t = sqrt(ᾱ_t) x_0 + sqrt(1 − ᾱ_t) ε`.
    pub fn q_sample(&self, x0: &Tensor, t: &[usize], noise: &Tensor) -> Tensor {
        assert_eq!(x0.shape(), noise.shape(), "q_sample noise shape mismatch");
        assert_eq!(t.len(), x0.rows(), "one timestep per row");
        let mut out = Tensor::zeros(x0.rows(), x0.cols());
        for (r, &t_r) in t.iter().enumerate() {
            let ab = self.schedule.alpha_bar(t_r);
            let (sa, sn) = (ab.sqrt(), (1.0 - ab).sqrt());
            for ((o, &x), &e) in
                out.row_mut(r).iter_mut().zip(x0.row(r).iter()).zip(noise.row(r).iter())
            {
                *o = sa * x + sn * e;
            }
        }
        out
    }

    /// Recovers the `x_0` estimate from a model prediction at timestep `t`.
    pub fn predict_x0(&self, x_t: &Tensor, prediction: &Tensor, t: usize) -> Tensor {
        match self.parameterization {
            Parameterization::PredictX0 => prediction.clone(),
            Parameterization::PredictNoise => {
                let ab = self.schedule.alpha_bar(t);
                let (sa, sn) = (ab.sqrt(), (1.0 - ab).sqrt());
                x_t.zip_with(prediction, |x, e| (x - sn * e) / sa)
            }
        }
    }
}

/// Owns a backbone + optimizer and trains/samples a Gaussian DDPM.
pub struct GaussianDdpm {
    diffusion: GaussianDiffusion,
    backbone: DiffusionBackbone,
    optimizer: Adam,
}

impl std::fmt::Debug for GaussianDdpm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GaussianDdpm({:?})", self.backbone)
    }
}

/// Gradient information returned by
/// [`GaussianDdpm::train_step_with_input_grad`] for end-to-end training.
#[derive(Debug)]
pub struct StepWithGrad {
    /// Scalar diffusion loss for the step.
    pub loss: f32,
    /// `dLoss/dx_0`: gradient of the diffusion loss with respect to the
    /// clean inputs (e.g. encoder outputs in the E2E baselines).
    pub input_grad: Tensor,
}

impl GaussianDdpm {
    /// Bundles a diffusion process with a backbone and Adam at `lr`.
    pub fn new(diffusion: GaussianDiffusion, backbone: DiffusionBackbone, lr: f32) -> Self {
        Self { diffusion, backbone, optimizer: Adam::new(lr) }
    }

    /// The diffusion math.
    pub fn diffusion(&self) -> &GaussianDiffusion {
        &self.diffusion
    }

    /// Mutable access to the backbone (for parameter counting etc.).
    pub fn backbone_mut(&mut self) -> &mut DiffusionBackbone {
        &mut self.backbone
    }

    /// Exports the backbone weights as a state dict (see
    /// `silofuse_nn::serialize`); rebuild the same architecture and call
    /// [`GaussianDdpm::import_weights`] to restore.
    pub fn export_weights(&mut self) -> Vec<u8> {
        silofuse_nn::serialize::export_state_dict(self.backbone.net_mut())
    }

    /// Restores weights exported by [`GaussianDdpm::export_weights`].
    ///
    /// # Errors
    /// Propagates shape/count mismatches from the state-dict layer.
    pub fn import_weights(
        &mut self,
        bytes: &[u8],
    ) -> Result<(), silofuse_nn::serialize::StateDictError> {
        silofuse_nn::serialize::import_state_dict(self.backbone.net_mut(), bytes)
    }

    /// Exports the full training state — backbone parameters, buffers,
    /// internal RNGs, and the complete Adam state — for checkpointing.
    /// Unlike [`GaussianDdpm::export_weights`], restoring this and
    /// continuing to train is bit-identical to never having stopped.
    pub fn export_train_state(&mut self) -> Vec<u8> {
        silofuse_nn::serialize::export_train_state(self.backbone.net_mut(), &self.optimizer)
    }

    /// Restores state exported by [`GaussianDdpm::export_train_state`].
    ///
    /// # Errors
    /// Propagates shape/count mismatches from the state-dict layer; a
    /// failed import leaves the model untouched.
    pub fn import_train_state(
        &mut self,
        bytes: &[u8],
    ) -> Result<(), silofuse_nn::serialize::StateDictError> {
        silofuse_nn::serialize::import_train_state(
            self.backbone.net_mut(),
            &mut self.optimizer,
            bytes,
        )
    }

    /// The resumable latent-DDPM training loop shared by the centralized
    /// LatentDiff model and the SiloFuse coordinator: `steps` minibatch
    /// steps over the latent matrix `z`, checkpointed through `ckpt` under
    /// (`name`, `phase`), emitting `latent-ddpm` train events.
    ///
    /// Checkpoint payloads carry the caller's RNG state alongside the full
    /// training state, so a resumed loop replays the exact random stream —
    /// for a fixed seed, crash-at-step-N + resume is byte-identical to an
    /// uninterrupted run. With [`Checkpointer::disabled`] the loop is
    /// byte-identical to the pre-checkpoint implementation (nothing here
    /// consumes RNG beyond the training steps themselves).
    ///
    /// # Errors
    /// Checkpoint I/O or restore failures, and
    /// [`CheckpointError::Crashed`] when an armed crash point fires.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_latent(
        &mut self,
        z: &Tensor,
        steps: usize,
        batch_size: usize,
        lr_for_log: f32,
        rng: &mut StdRng,
        ckpt: &Checkpointer,
        name: &str,
        phase: &str,
    ) -> Result<f32, CheckpointError> {
        // Training math must never route through a reduced-precision
        // backend: pin dispatch to f32 for the duration of this fit.
        let _f32 = silofuse_nn::backend::force_f32();
        silofuse_nn::backend::record_telemetry();
        let n = z.rows();
        let mut start = 0usize;
        if let Some(saved) = ckpt.load(name, phase)? {
            if saved.payload.len() < 8 {
                return Err(CheckpointError::Truncated);
            }
            let state = u64::from_le_bytes(saved.payload[..8].try_into().unwrap());
            self.import_train_state(&saved.payload[8..]).map_err(CheckpointError::state)?;
            *rng = StdRng::from_state(state);
            start = (saved.step as usize).min(steps);
        } else if ckpt.is_enabled() {
            // Phase-entry checkpoint: a crash before the first periodic
            // save must not resume with an already-advanced RNG stream.
            let payload = self.snapshot_with_rng(rng);
            ckpt.save(name, phase, 0, &payload)?;
        }
        ckpt.maybe_crash(phase, start as u64)?;
        let stride = silofuse_observe::epoch_stride(steps);
        let mut last_loss = 0.0f32;
        for step in start..steps {
            let idx: Vec<usize> = (0..batch_size.min(n)).map(|_| rng.gen_range(0..n)).collect();
            let batch = z.select_rows(&idx);
            let loss = self.train_step(&batch, rng);
            last_loss = loss;
            if step % stride == 0 {
                silofuse_observe::train_epoch(
                    "latent-ddpm",
                    step as u64,
                    f64::from(loss),
                    f64::from(lr_for_log),
                    batch.rows() as u64,
                );
            }
            let done = (step + 1) as u64;
            if ckpt.is_enabled() && ckpt.due(done, steps as u64) {
                let payload = self.snapshot_with_rng(rng);
                ckpt.save(name, phase, done, &payload)?;
            }
            ckpt.maybe_crash(phase, done)?;
        }
        Ok(last_loss)
    }

    /// `caller-rng state u64 | training-state dict` — the payload format
    /// [`GaussianDdpm::fit_latent`] checkpoints.
    fn snapshot_with_rng(&mut self, rng: &StdRng) -> Vec<u8> {
        let mut payload = rng.state().to_le_bytes().to_vec();
        payload.extend_from_slice(&self.export_train_state());
        payload
    }

    /// One optimisation step on a batch of clean data; returns the loss.
    pub fn train_step(&mut self, x0: &Tensor, rng: &mut StdRng) -> f32 {
        silofuse_observe::count("diffusion.train_steps", 1);
        let (loss, _, _) = self.step_inner(x0, rng, false);
        loss
    }

    /// One optimisation step that *also* backpropagates into `x_0` —
    /// required by the end-to-end baselines (Figs. 8–9), where the
    /// autoencoder and diffusion model train jointly.
    pub fn train_step_with_input_grad(&mut self, x0: &Tensor, rng: &mut StdRng) -> StepWithGrad {
        let (loss, input_grad, _) = self.step_inner(x0, rng, true);
        StepWithGrad { loss, input_grad: input_grad.expect("input grad requested") }
    }

    fn step_inner(
        &mut self,
        x0: &Tensor,
        rng: &mut StdRng,
        want_input_grad: bool,
    ) -> (f32, Option<Tensor>, Vec<usize>) {
        let timesteps = self.diffusion.schedule.timesteps();
        let ts: Vec<usize> = (0..x0.rows()).map(|_| rng.gen_range(0..timesteps)).collect();
        let noise = randn(x0.rows(), x0.cols(), rng);
        let x_t = self.diffusion.q_sample(x0, &ts, &noise);

        let pred = self.backbone.predict(&x_t, &ts, Mode::Train);
        let target = match self.diffusion.parameterization {
            Parameterization::PredictX0 => x0,
            Parameterization::PredictNoise => &noise,
        };
        let (loss, grad) = mse(&pred, target);

        self.backbone.net_mut().zero_grad();
        let grad_xt = self.backbone.backward_to_input(&grad);
        self.optimizer.step(self.backbone.net_mut());

        let input_grad = want_input_grad.then(|| {
            // dLoss/dx0 = dLoss/dx_t * sqrt(ᾱ_t)  (through the forward process)
            //           + direct term when the target itself is x0.
            let mut g = grad_xt;
            for (r, &t) in ts.iter().enumerate() {
                let sa = self.diffusion.schedule.alpha_bar(t).sqrt();
                for v in g.row_mut(r) {
                    *v *= sa;
                }
            }
            if self.diffusion.parameterization == Parameterization::PredictX0 {
                g.add_scaled(&grad, -1.0); // dLoss/dtarget = -dLoss/dpred
            }
            g
        });
        (loss, input_grad, ts)
    }

    /// Draws `n` samples by reverse diffusion over `inference_steps` strided
    /// steps (the paper trains with `T = 200` and samples with 25), with
    /// the whole batch routed through the backend gemm/elementwise kernels.
    ///
    /// `eta` interpolates between deterministic DDIM (`0.0`) and
    /// DDPM-style ancestral sampling (`1.0`).
    ///
    /// # Panics
    /// Panics when `inference_steps` is zero or exceeds `T`; use
    /// [`GaussianDdpm::try_sample`] for a typed error.
    pub fn sample(
        &mut self,
        n: usize,
        inference_steps: usize,
        eta: f32,
        rng: &mut StdRng,
    ) -> Tensor {
        self.try_sample(n, inference_steps, eta, rng).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`GaussianDdpm::sample`]: rejects an invalid
    /// `inference_steps` with a typed error instead of panicking.
    ///
    /// # Errors
    /// [`InvalidInferenceSteps`] when `inference_steps == 0` or `> T`.
    pub fn try_sample(
        &mut self,
        n: usize,
        inference_steps: usize,
        eta: f32,
        rng: &mut StdRng,
    ) -> Result<Tensor, InvalidInferenceSteps> {
        let _span = silofuse_observe::span("ddpm-sample");
        let dim = self.backbone.config().data_dim;
        let mut sampler = match self.chunked_sampler(n, inference_steps, eta, n.max(1), rng) {
            Ok(s) => s,
            Err(SampleRequestError::Steps(e)) => return Err(e),
            // chunk_rows is n.max(1) >= 1, so ChunkRows cannot occur here.
            Err(SampleRequestError::ChunkRows(_)) => unreachable!("chunk_rows >= 1"),
        };
        match sampler.next_chunk() {
            Some((_, x)) => Ok(x),
            None => Ok(Tensor::zeros(0, dim)),
        }
    }

    /// Creates a streaming batched sampler yielding chunks of at most
    /// `chunk_rows` rows, so synthesizing millions of rows holds peak
    /// memory at `O(chunk_rows × dim)` regardless of `n`.
    ///
    /// The only RNG consumption is one `u64` base seed drawn here; every
    /// row then derives its own noise stream from `(base, row)`, which
    /// makes the output bit-identical across chunk sizes, batch
    /// compositions, and backend thread counts — and identical to the
    /// per-row oracle [`GaussianDdpm::sample_rows_reference`].
    ///
    /// # Errors
    /// [`SampleRequestError`] when `inference_steps == 0` or `> T`, or
    /// when `chunk_rows == 0`.
    pub fn chunked_sampler(
        &mut self,
        n: usize,
        inference_steps: usize,
        eta: f32,
        chunk_rows: usize,
        rng: &mut StdRng,
    ) -> Result<ChunkedSampler<'_>, SampleRequestError> {
        let base = rng.gen::<u64>();
        self.chunked_sampler_from_base(n, inference_steps, eta, chunk_rows, base)
    }

    /// [`GaussianDdpm::chunked_sampler`] with an explicit base seed — the
    /// deterministic-resume entry point: a checkpoint that recorded the
    /// base regenerates the exact same rows after a crash.
    ///
    /// # Errors
    /// [`SampleRequestError`] when `inference_steps == 0` or `> T`, or
    /// when `chunk_rows == 0`.
    pub fn chunked_sampler_from_base(
        &mut self,
        n: usize,
        inference_steps: usize,
        eta: f32,
        chunk_rows: usize,
        base: u64,
    ) -> Result<ChunkedSampler<'_>, SampleRequestError> {
        self.chunked_sampler_range_from_base(0, n, inference_steps, eta, chunk_rows, base)
    }

    /// Cursor-range variant of [`GaussianDdpm::chunked_sampler_from_base`]:
    /// yields only rows `start_row .. start_row + rows` of the stream the
    /// base seed defines. Because every row derives its noise from
    /// `(base, row)` alone, draining `[0, k)` now and `[k, n)` later is
    /// bit-identical to draining `[0, n)` in one pass — the entry point
    /// cursor pagination in `silofuse-serve` resumes from.
    ///
    /// # Errors
    /// [`SampleRequestError`] when `inference_steps == 0` or `> T`, or
    /// when `chunk_rows == 0`.
    pub fn chunked_sampler_range_from_base(
        &mut self,
        start_row: usize,
        rows: usize,
        inference_steps: usize,
        eta: f32,
        chunk_rows: usize,
        base: u64,
    ) -> Result<ChunkedSampler<'_>, SampleRequestError> {
        if chunk_rows == 0 {
            return Err(InvalidChunkRows.into());
        }
        silofuse_nn::backend::record_telemetry();
        silofuse_observe::count("diffusion.sampled_rows", rows as u64);
        let coeffs = SampleCoefficients::build(&self.diffusion.schedule, inference_steps, eta)?;
        Ok(ChunkedSampler {
            ddpm: self,
            coeffs,
            base,
            start_row,
            n: start_row + rows,
            chunk_rows,
            next_row: start_row,
        })
    }

    /// The seed per-row sampler: every row runs the reverse chain alone,
    /// with plain scalar arithmetic for the update rules (only the backbone
    /// forward is shared with the batched path). This is the bit-identity
    /// oracle the batched engine is tested against, and the deliberately
    /// unbatched baseline the `synth` benchmark times.
    ///
    /// # Errors
    /// [`InvalidInferenceSteps`] when `inference_steps == 0` or `> T`.
    pub fn sample_rows_reference(
        &mut self,
        n: usize,
        inference_steps: usize,
        eta: f32,
        rng: &mut StdRng,
    ) -> Result<Tensor, InvalidInferenceSteps> {
        let dim = self.backbone.config().data_dim;
        let coeffs = SampleCoefficients::build(&self.diffusion.schedule, inference_steps, eta)?;
        let base = rng.gen::<u64>();
        let k = coeffs.steps.len();
        let mut out = Tensor::zeros(n, dim);
        for r in 0..n {
            let mut rr = row_rng(base, r as u64);
            let mut x = randn(1, dim, &mut rr);
            for i in 0..k {
                let pred = self.backbone.predict(&x, &coeffs.steps[i..=i], Mode::Infer);
                let sa = coeffs.sqrt_ab[i];
                let sn = coeffs.sqrt_one_minus_ab[i];
                let x0_hat: Vec<f32> = match self.diffusion.parameterization {
                    Parameterization::PredictX0 => pred.as_slice().to_vec(),
                    Parameterization::PredictNoise => x
                        .as_slice()
                        .iter()
                        .zip(pred.as_slice())
                        .map(|(&xt, &e)| (xt - sn * e) / sa)
                        .collect(),
                };
                if i + 1 == k {
                    x = Tensor::from_vec(1, dim, x0_hat);
                    break;
                }
                let denom = sn.max(1e-8);
                let (sap, dir, sigma) =
                    (coeffs.sqrt_ab_prev[i], coeffs.dir_scale[i], coeffs.sigma[i]);
                let mut next = vec![0.0f32; dim];
                for (d, slot) in next.iter_mut().enumerate() {
                    let eps = (x.as_slice()[d] - sa * x0_hat[d]) / denom;
                    *slot = x0_hat[d] * sap + dir * eps;
                }
                if sigma > 0.0 {
                    let mut z = vec![0.0f32; dim];
                    randn_fill(&mut z, &mut rr);
                    for (slot, &zd) in next.iter_mut().zip(&z) {
                        *slot += sigma * zd;
                    }
                }
                x = Tensor::from_vec(1, dim, next);
            }
            out.row_mut(r).copy_from_slice(x.row(0));
        }
        Ok(out)
    }

    /// Runs the full reverse chain for rows `first_row .. first_row + m` as
    /// one batch through the backend kernels, drawing every row's noise
    /// from its derived RNG and recycling step temporaries through the
    /// workspace arena.
    fn sample_chunk(
        &mut self,
        coeffs: &SampleCoefficients,
        base: u64,
        first_row: usize,
        m: usize,
    ) -> Tensor {
        let dim = self.backbone.config().data_dim;
        let mut rngs: Vec<StdRng> = (0..m).map(|j| row_rng(base, (first_row + j) as u64)).collect();
        let mut x = workspace::take(m, dim);
        fill_gaussian_rows(&mut x, &mut rngs);
        let mut ts = vec![0usize; m];
        let k = coeffs.steps.len();
        for i in 0..k {
            ts.fill(coeffs.steps[i]);
            let pred = self.backbone.predict(&x, &ts, Mode::Infer);
            let sa = coeffs.sqrt_ab[i];
            let sn = coeffs.sqrt_one_minus_ab[i];
            let x0_hat = match self.diffusion.parameterization {
                Parameterization::PredictX0 => pred,
                Parameterization::PredictNoise => {
                    let recovered = x.zip_with(&pred, |xt, e| (xt - sn * e) / sa);
                    workspace::recycle(pred);
                    recovered
                }
            };
            if i + 1 == k {
                workspace::recycle(std::mem::replace(&mut x, x0_hat));
                break;
            }
            // Generalised DDIM update on the sub-schedule, all coefficients
            // precomputed once per run.
            let denom = sn.max(1e-8);
            let eps_hat = x.zip_with(&x0_hat, |xt, x0| (xt - sa * x0) / denom);
            let mut next = x0_hat;
            next.scale_assign(coeffs.sqrt_ab_prev[i]);
            next.add_scaled(&eps_hat, coeffs.dir_scale[i]);
            workspace::recycle(eps_hat);
            let sigma = coeffs.sigma[i];
            if sigma > 0.0 {
                let mut z = workspace::take(m, dim);
                fill_gaussian_rows(&mut z, &mut rngs);
                next.add_scaled(&z, sigma);
                workspace::recycle(z);
            }
            workspace::recycle(std::mem::replace(&mut x, next));
        }
        x
    }
}

/// Per-run cache of the strided reverse-diffusion constants: one entry per
/// sub-schedule step (`sqrt ᾱ`, the DDIM `σ`/direction scales, …), so the
/// chunk loop never re-derives schedule maths while streaming rows.
#[derive(Debug, Clone)]
pub struct SampleCoefficients {
    steps: Vec<usize>,
    sqrt_ab: Vec<f32>,
    sqrt_one_minus_ab: Vec<f32>,
    // Transition constants for step i -> i+1; the final entries are unused.
    sqrt_ab_prev: Vec<f32>,
    sigma: Vec<f32>,
    dir_scale: Vec<f32>,
}

impl SampleCoefficients {
    /// Precomputes every per-step constant for `inference_steps` strides at
    /// stochasticity `eta`.
    ///
    /// # Errors
    /// [`InvalidInferenceSteps`] when `inference_steps == 0` or `> T`.
    pub fn build(
        schedule: &NoiseSchedule,
        inference_steps: usize,
        eta: f32,
    ) -> Result<Self, InvalidInferenceSteps> {
        let steps = schedule.try_inference_steps(inference_steps)?;
        let k = steps.len();
        let mut c = Self {
            steps,
            sqrt_ab: vec![0.0; k],
            sqrt_one_minus_ab: vec![0.0; k],
            sqrt_ab_prev: vec![0.0; k],
            sigma: vec![0.0; k],
            dir_scale: vec![0.0; k],
        };
        for i in 0..k {
            let ab_t = schedule.alpha_bar(c.steps[i]);
            c.sqrt_ab[i] = ab_t.sqrt();
            c.sqrt_one_minus_ab[i] = (1.0 - ab_t).sqrt();
            if i + 1 < k {
                let ab_prev = schedule.alpha_bar(c.steps[i + 1]);
                let sigma =
                    eta * ((1.0 - ab_prev) / (1.0 - ab_t)).sqrt() * (1.0 - ab_t / ab_prev).sqrt();
                c.sigma[i] = sigma;
                c.dir_scale[i] = (1.0 - ab_prev - sigma * sigma).max(0.0).sqrt();
                c.sqrt_ab_prev[i] = ab_prev.sqrt();
            }
        }
        Ok(c)
    }

    /// Number of reverse steps in the strided schedule.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the schedule is empty (it never is for a valid build).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The strided timestep indices, descending.
    pub fn steps(&self) -> &[usize] {
        &self.steps
    }
}

/// Derives row `row`'s private RNG from the run's base seed. The 64-bit
/// golden-ratio multiply decorrelates neighbouring row indices before
/// `seed_from_u64` scrambles the combined value again; each row owning its
/// own noise stream is what makes batched output invariant to chunking.
fn row_rng(base: u64, row: u64) -> StdRng {
    StdRng::seed_from_u64(base ^ row.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Fills each row of `x` from its own RNG, drawing exactly like `randn`.
fn fill_gaussian_rows(x: &mut Tensor, rngs: &mut [StdRng]) {
    for (r, rng) in rngs.iter_mut().enumerate() {
        randn_fill(x.row_mut(r), rng);
    }
}

/// Streaming batched sampler over the reverse-diffusion chain: yields
/// latent chunks of at most `chunk_rows` rows until `n` rows have been
/// produced. Created by [`GaussianDdpm::chunked_sampler`].
pub struct ChunkedSampler<'a> {
    ddpm: &'a mut GaussianDdpm,
    coeffs: SampleCoefficients,
    base: u64,
    start_row: usize,
    n: usize,
    chunk_rows: usize,
    next_row: usize,
}

impl ChunkedSampler<'_> {
    /// The per-run base seed every row RNG derives from (checkpoint this to
    /// make a resumed synthesis regenerate identical rows).
    pub fn base_seed(&self) -> u64 {
        self.base
    }

    /// The absolute row cursor this sampler stops at (equals the row
    /// count for a from-zero sampler; a range sampler produces
    /// `rows_total() - first_row` rows starting at its cursor).
    pub fn rows_total(&self) -> usize {
        self.n
    }

    /// Latent width of every produced chunk.
    pub fn dim(&self) -> usize {
        self.ddpm.backbone.config().data_dim
    }

    /// The absolute row index the next chunk starts at.
    pub fn rows_done(&self) -> usize {
        self.next_row
    }

    /// Number of chunks a full drain will yield.
    pub fn total_chunks(&self) -> usize {
        (self.n - self.start_row).div_ceil(self.chunk_rows)
    }

    /// Produces the next chunk as `(first_row, latents)`, or `None` once
    /// all `n` rows are generated. The tensor's storage comes from the
    /// workspace arena — recycle it when done to keep synthesis
    /// allocation-free at steady state.
    pub fn next_chunk(&mut self) -> Option<(usize, Tensor)> {
        if self.next_row >= self.n {
            return None;
        }
        let _span = silofuse_observe::span(silofuse_observe::names::SYNTH_CHUNK_SPAN);
        let first = self.next_row;
        let m = self.chunk_rows.min(self.n - first);
        let x = self.ddpm.sample_chunk(&self.coeffs, self.base, first, m);
        self.next_row = first + m;
        silofuse_observe::count(silofuse_observe::names::SYNTH_ROWS, m as u64);
        silofuse_observe::count(silofuse_observe::names::SYNTH_CHUNKS, 1);
        Some((first, x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::BackboneConfig;
    use crate::schedule::ScheduleKind;
    use rand::SeedableRng;

    fn small_ddpm(dim: usize, param: Parameterization, seed: u64) -> GaussianDdpm {
        let mut rng = StdRng::seed_from_u64(seed);
        let schedule = NoiseSchedule::new(ScheduleKind::Linear, 50);
        let diffusion = GaussianDiffusion::new(schedule, param);
        let cfg = BackboneConfig {
            data_dim: dim,
            hidden_dim: 64,
            depth: 3,
            time_embed_dim: 8,
            dropout: 0.0,
            out_dim: dim,
        };
        let backbone = DiffusionBackbone::new(cfg, seed, &mut rng);
        GaussianDdpm::new(diffusion, backbone, 2e-3)
    }

    #[test]
    fn q_sample_at_late_step_is_mostly_noise() {
        let schedule = NoiseSchedule::new(ScheduleKind::Linear, 200);
        let d = GaussianDiffusion::new(schedule, Parameterization::PredictX0);
        let mut rng = StdRng::seed_from_u64(0);
        let x0 = Tensor::full(256, 4, 3.0);
        let noise = randn(256, 4, &mut rng);
        let xt = d.q_sample(&x0, &vec![199; 256], &noise);
        // ᾱ_199 ~ 0.1 for the linear schedule over 200 steps: signal mostly gone.
        let mean = xt.mean();
        assert!(mean.abs() < 1.3, "late-step mean {mean} should be far from 3.0");
    }

    #[test]
    fn q_sample_at_step_zero_is_mostly_signal() {
        let schedule = NoiseSchedule::new(ScheduleKind::Linear, 200);
        let d = GaussianDiffusion::new(schedule, Parameterization::PredictX0);
        let mut rng = StdRng::seed_from_u64(0);
        let x0 = Tensor::full(64, 4, 3.0);
        let noise = randn(64, 4, &mut rng);
        let xt = d.q_sample(&x0, &vec![0; 64], &noise);
        assert!((xt.mean() - 3.0).abs() < 0.1);
    }

    #[test]
    fn predict_x0_from_noise_inverts_q_sample() {
        let schedule = NoiseSchedule::new(ScheduleKind::Linear, 100);
        let d = GaussianDiffusion::new(schedule, Parameterization::PredictNoise);
        let mut rng = StdRng::seed_from_u64(1);
        let x0 = randn(8, 3, &mut rng);
        let noise = randn(8, 3, &mut rng);
        let t = 42;
        let xt = d.q_sample(&x0, &[t; 8], &noise);
        // Given the *true* noise, predict_x0 must recover x0 exactly.
        let rec = d.predict_x0(&xt, &noise, t);
        for (a, b) in rec.as_slice().iter().zip(x0.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn training_reduces_loss_x0_parameterization() {
        let mut ddpm = small_ddpm(2, Parameterization::PredictX0, 7);
        let mut rng = StdRng::seed_from_u64(7);
        // Bimodal 2-D data.
        let x0 = Tensor::from_fn(128, 2, |r, _| if r % 2 == 0 { 2.0 } else { -2.0 });
        let first: f32 = (0..10).map(|_| ddpm.train_step(&x0, &mut rng)).sum::<f32>() / 10.0;
        for _ in 0..300 {
            ddpm.train_step(&x0, &mut rng);
        }
        let last: f32 = (0..10).map(|_| ddpm.train_step(&x0, &mut rng)).sum::<f32>() / 10.0;
        assert!(last < first * 0.7, "loss did not fall: {first} -> {last}");
    }

    #[test]
    fn trained_ddpm_samples_match_data_distribution() {
        let mut ddpm = small_ddpm(1, Parameterization::PredictX0, 11);
        let mut rng = StdRng::seed_from_u64(11);
        // Data concentrated at +/- 2.
        let x0 = Tensor::from_fn(256, 1, |r, _| if r % 2 == 0 { 2.0 } else { -2.0 });
        for _ in 0..600 {
            ddpm.train_step(&x0, &mut rng);
        }
        let samples = ddpm.sample(400, 25, 1.0, &mut rng);
        assert!(samples.all_finite());
        // Mean near zero, values spread toward the two modes.
        assert!(samples.mean().abs() < 0.6, "mean {}", samples.mean());
        let spread = samples.as_slice().iter().filter(|v| v.abs() > 1.0).count();
        assert!(
            spread > samples.len() / 3,
            "samples collapsed to centre: {spread}/{}",
            samples.len()
        );
    }

    #[test]
    fn input_grad_matches_finite_difference() {
        // Use a fixed seed so the same (t, noise) draw happens for each probe.
        let mut ddpm = small_ddpm(2, Parameterization::PredictX0, 3);
        let x0 = Tensor::from_vec(2, 2, vec![0.5, -0.3, 0.2, 0.8]);

        // Analytic gradient (captured before the optimizer perturbs weights
        // in later probes — so rebuild the model for each evaluation).
        let grad = {
            let mut m = small_ddpm(2, Parameterization::PredictX0, 3);
            let mut rng = StdRng::seed_from_u64(99);
            m.train_step_with_input_grad(&x0, &mut rng).input_grad
        };

        let eps = 1e-2f32;
        for i in 0..x0.len() {
            let eval = |x: &Tensor| {
                let mut m = small_ddpm(2, Parameterization::PredictX0, 3);
                let mut rng = StdRng::seed_from_u64(99);
                m.train_step_with_input_grad(x, &mut rng).loss
            };
            let mut xp = x0.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x0.clone();
            xm.as_mut_slice()[i] -= eps;
            let numeric = (eval(&xp) - eval(&xm)) / (2.0 * eps);
            let got = grad.as_slice()[i];
            assert!(
                (numeric - got).abs() < 0.05 * (1.0 + numeric.abs()),
                "input grad mismatch at {i}: numeric {numeric} vs analytic {got}"
            );
        }
        let _ = ddpm.train_step(&x0, &mut StdRng::seed_from_u64(1));
    }

    #[test]
    fn weight_round_trip_reproduces_samples() {
        let mut trained = small_ddpm(2, Parameterization::PredictX0, 21);
        let mut rng = StdRng::seed_from_u64(21);
        let data = Tensor::from_fn(64, 2, |r, _| if r % 2 == 0 { 1.0 } else { -1.0 });
        for _ in 0..50 {
            trained.train_step(&data, &mut rng);
        }
        let blob = trained.export_weights();
        let mut fresh = small_ddpm(2, Parameterization::PredictX0, 22);
        fresh.import_weights(&blob).unwrap();
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        assert_eq!(trained.sample(8, 5, 0.0, &mut r1), fresh.sample(8, 5, 0.0, &mut r2));
    }

    #[test]
    fn fit_latent_crash_and_resume_is_bit_identical() {
        let dir = std::env::temp_dir().join(format!("silofuse-ddpm-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut rng = StdRng::seed_from_u64(33);
        let z = randn(64, 2, &mut rng);

        // Uninterrupted reference (disabled checkpointer = plain fit).
        let mut clean = small_ddpm(2, Parameterization::PredictX0, 33);
        let mut clean_rng = StdRng::seed_from_u64(34);
        clean
            .fit_latent(&z, 30, 16, 2e-3, &mut clean_rng, &Checkpointer::disabled(), "d", "lt")
            .unwrap();

        // Crash at step 13, then resume into a freshly-built model.
        let ckpt = Checkpointer::new(&dir, 5);
        let crash = ckpt
            .clone()
            .with_crash(Some(silofuse_checkpoint::CrashPoint { phase: "lt".into(), step: 13 }));
        let mut victim = small_ddpm(2, Parameterization::PredictX0, 33);
        let mut victim_rng = StdRng::seed_from_u64(34);
        let err =
            victim.fit_latent(&z, 30, 16, 2e-3, &mut victim_rng, &crash, "d", "lt").unwrap_err();
        assert!(matches!(err, CheckpointError::Crashed { step: 13, .. }));
        drop(victim); // simulated process death
        let mut resumed = small_ddpm(2, Parameterization::PredictX0, 33);
        let mut resumed_rng = StdRng::seed_from_u64(999); // overwritten by the checkpoint
        resumed
            .fit_latent(&z, 30, 16, 2e-3, &mut resumed_rng, &ckpt.with_resume(true), "d", "lt")
            .unwrap();

        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        assert_eq!(clean.sample(8, 5, 1.0, &mut r1), resumed.sample(8, 5, 1.0, &mut r2));
        assert_eq!(clean_rng, resumed_rng, "caller RNG must land in the same state");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ddim_sampling_is_deterministic_given_rng() {
        let mut ddpm = small_ddpm(2, Parameterization::PredictNoise, 5);
        let mut r1 = StdRng::seed_from_u64(4);
        let mut r2 = StdRng::seed_from_u64(4);
        let a = ddpm.sample(8, 10, 0.0, &mut r1);
        let b = ddpm.sample(8, 10, 0.0, &mut r2);
        assert_eq!(a, b);
    }

    /// Bitwise equality helper with a row/column diagnostic.
    fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{what}: bit mismatch at flat index {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn batched_sample_is_bit_identical_to_per_row_oracle() {
        for param in [Parameterization::PredictX0, Parameterization::PredictNoise] {
            for eta in [0.0f32, 0.7, 1.0] {
                let mut ddpm = small_ddpm(3, param, 17);
                let mut r1 = StdRng::seed_from_u64(9);
                let mut r2 = StdRng::seed_from_u64(9);
                let batched = ddpm.try_sample(13, 7, eta, &mut r1).unwrap();
                let oracle = ddpm.sample_rows_reference(13, 7, eta, &mut r2).unwrap();
                assert_bits_eq(&batched, &oracle, &format!("{param:?} eta={eta}"));
                assert_eq!(r1, r2, "both paths must consume exactly one u64");
            }
        }
    }

    #[test]
    fn chunked_sampling_is_invariant_to_chunk_size() {
        let mut ddpm = small_ddpm(2, Parameterization::PredictX0, 23);
        let mut whole_rng = StdRng::seed_from_u64(5);
        let whole = ddpm.try_sample(11, 6, 1.0, &mut whole_rng).unwrap();
        for chunk in [1usize, 2, 3, 4, 11, 64] {
            let mut rng = StdRng::seed_from_u64(5);
            let mut out = Tensor::zeros(11, 2);
            let mut sampler = ddpm.chunked_sampler(11, 6, 1.0, chunk, &mut rng).unwrap();
            assert_eq!(sampler.total_chunks(), 11usize.div_ceil(chunk));
            while let Some((first, part)) = sampler.next_chunk() {
                for r in 0..part.rows() {
                    out.row_mut(first + r).copy_from_slice(part.row(r));
                }
                silofuse_nn::workspace::recycle(part);
            }
            assert_bits_eq(&whole, &out, &format!("chunk={chunk}"));
            assert_eq!(rng, whole_rng, "chunking must not change RNG consumption");
        }
    }

    #[test]
    fn resumed_sampler_from_base_regenerates_identical_rows() {
        let mut ddpm = small_ddpm(2, Parameterization::PredictNoise, 29);
        let mut rng = StdRng::seed_from_u64(8);
        let mut first_half = Vec::new();
        let base = {
            let mut sampler = ddpm.chunked_sampler(10, 5, 1.0, 4, &mut rng).unwrap();
            let (_, a) = sampler.next_chunk().unwrap();
            first_half.push(a);
            sampler.base_seed()
        };
        // A "resumed" sampler rebuilt from the recorded base seed must
        // replay chunk 0 bit-identically and finish the remaining rows.
        let mut resumed = ddpm.chunked_sampler_from_base(10, 5, 1.0, 4, base).unwrap();
        let (_, again) = resumed.next_chunk().unwrap();
        assert_bits_eq(&first_half[0], &again, "replayed chunk 0");
        let mut rows = again.rows();
        while let Some((_, part)) = resumed.next_chunk() {
            rows += part.rows();
        }
        assert_eq!(rows, 10, "replayed chunk + remaining chunks cover all rows");
    }

    #[test]
    fn sample_zero_rows_is_empty_and_consumes_one_u64() {
        let mut ddpm = small_ddpm(2, Parameterization::PredictX0, 31);
        let mut rng = StdRng::seed_from_u64(3);
        let out = ddpm.try_sample(0, 5, 1.0, &mut rng).unwrap();
        assert_eq!(out.shape(), (0, 2));
        let mut reference = StdRng::seed_from_u64(3);
        let _: u64 = reference.gen();
        assert_eq!(rng, reference);
    }

    #[test]
    fn invalid_inference_steps_is_a_typed_error() {
        let mut ddpm = small_ddpm(2, Parameterization::PredictX0, 37);
        let mut rng = StdRng::seed_from_u64(1);
        let err = ddpm.try_sample(4, 0, 1.0, &mut rng).unwrap_err();
        assert_eq!(err, InvalidInferenceSteps { requested: 0, timesteps: 50 });
        let err = ddpm.try_sample(4, 51, 1.0, &mut rng).unwrap_err();
        assert_eq!(err.requested, 51);
    }

    #[test]
    fn zero_chunk_rows_is_a_typed_error() {
        let mut ddpm = small_ddpm(2, Parameterization::PredictX0, 41);
        let mut rng = StdRng::seed_from_u64(1);
        let err = ddpm.chunked_sampler(4, 5, 1.0, 0, &mut rng).err().unwrap();
        assert_eq!(err, SampleRequestError::ChunkRows(InvalidChunkRows));
        assert_eq!(err.to_string(), "synthesis chunk_rows must be at least 1");
        // The step error still comes through the combined type.
        let err = ddpm.chunked_sampler(4, 0, 1.0, 2, &mut rng).err().unwrap();
        assert!(matches!(err, SampleRequestError::Steps(_)));
    }

    #[test]
    fn range_sampler_matches_the_matching_slice_of_a_full_drain() {
        let mut ddpm = small_ddpm(3, Parameterization::PredictNoise, 43);
        let base = 0xfeed_beef_u64;
        let mut whole = Tensor::zeros(13, 3);
        {
            let mut sampler = ddpm.chunked_sampler_from_base(13, 6, 1.0, 5, base).unwrap();
            while let Some((first, part)) = sampler.next_chunk() {
                for r in 0..part.rows() {
                    whole.row_mut(first + r).copy_from_slice(part.row(r));
                }
                silofuse_nn::workspace::recycle(part);
            }
        }
        // Any (start, len) window, drained with any chunking, reproduces
        // the same bytes the full pass put at those rows.
        for (start, len, chunk) in [(0usize, 13usize, 4usize), (4, 9, 3), (7, 2, 1), (12, 1, 8)] {
            let mut sampler =
                ddpm.chunked_sampler_range_from_base(start, len, 6, 1.0, chunk, base).unwrap();
            assert_eq!(sampler.total_chunks(), len.div_ceil(chunk));
            assert_eq!(sampler.rows_done(), start);
            assert_eq!(sampler.rows_total(), start + len);
            let mut covered = 0usize;
            while let Some((first, part)) = sampler.next_chunk() {
                for r in 0..part.rows() {
                    let got = part.row(r);
                    let want = whole.row(first + r);
                    for (g, w) in got.iter().zip(want) {
                        assert_eq!(g.to_bits(), w.to_bits(), "row {} start={start}", first + r);
                    }
                }
                covered += part.rows();
                silofuse_nn::workspace::recycle(part);
            }
            assert_eq!(covered, len);
        }
        // An empty range yields no chunks.
        let mut empty = ddpm.chunked_sampler_range_from_base(5, 0, 6, 1.0, 4, base).unwrap();
        assert!(empty.next_chunk().is_none());
    }

    #[test]
    fn sample_coefficients_match_schedule_maths() {
        let schedule = NoiseSchedule::new(ScheduleKind::Linear, 40);
        let c = SampleCoefficients::build(&schedule, 10, 1.0).unwrap();
        assert!(!c.is_empty());
        assert_eq!(c.len(), c.steps().len());
        assert_eq!(c.steps()[0], 39);
        assert_eq!(*c.steps().last().unwrap(), 0);
        for (i, &t) in c.steps().iter().enumerate() {
            let ab = schedule.alpha_bar(t);
            assert_eq!(c.sqrt_ab[i].to_bits(), ab.sqrt().to_bits());
            assert_eq!(c.sqrt_one_minus_ab[i].to_bits(), (1.0f32 - ab).sqrt().to_bits());
        }
    }
}
