//! # silofuse-diffusion
//!
//! Denoising diffusion substrate for the SiloFuse reproduction: variance
//! schedules, the Gaussian DDPM used on latent features (paper Eqs. 1, 2, 5),
//! multinomial diffusion for categorical features (TabDDPM's `M^t[v]` loss,
//! Eq. 3), and the MLP denoising backbone with sinusoidal time embeddings.
//!
//! ## Example: train a tiny Gaussian DDPM
//!
//! ```
//! use silofuse_diffusion::schedule::{NoiseSchedule, ScheduleKind};
//! use silofuse_diffusion::gaussian::{GaussianDiffusion, GaussianDdpm, Parameterization};
//! use silofuse_diffusion::backbone::{BackboneConfig, DiffusionBackbone};
//! use rand::{rngs::StdRng, SeedableRng};
//! use silofuse_nn::init::randn;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let schedule = NoiseSchedule::new(ScheduleKind::Linear, 50);
//! let diffusion = GaussianDiffusion::new(schedule, Parameterization::PredictX0);
//! let backbone = DiffusionBackbone::new(
//!     BackboneConfig { data_dim: 3, hidden_dim: 32, depth: 2,
//!                      time_embed_dim: 8, dropout: 0.0, out_dim: 3 },
//!     0, &mut rng);
//! let mut ddpm = GaussianDdpm::new(diffusion, backbone, 1e-3);
//! let data = randn(64, 3, &mut rng);
//! for _ in 0..5 { ddpm.train_step(&data, &mut rng); }
//! let samples = ddpm.sample(16, 10, 1.0, &mut rng);
//! assert_eq!(samples.shape(), (16, 3));
//! ```

#![warn(missing_docs)]

pub mod backbone;
pub mod gaussian;
pub mod multinomial;
pub mod schedule;

pub use backbone::{BackboneConfig, DiffusionBackbone};
pub use gaussian::{
    ChunkedSampler, GaussianDdpm, GaussianDiffusion, InvalidChunkRows, Parameterization,
    SampleCoefficients, SampleRequestError,
};
pub use multinomial::MultinomialDiffusion;
pub use schedule::{InvalidInferenceSteps, NoiseSchedule, ScheduleKind};
