//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment for this repository has no crates-io access, so
//! the workspace vendors the small slice of the `rand` API it actually
//! uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), uniform
//! sampling over integer and float ranges, [`seq::SliceRandom`], and the
//! [`distributions::Standard`] distribution.
//!
//! The generator is SplitMix64: deterministic, fast, and statistically
//! solid for simulation workloads. Streams differ from upstream `rand`
//! (exact reproduction of upstream sequences is not a goal; seeded
//! determinism within this workspace is).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` (the only constructor this repo uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value via the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                let v = self.start + u * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Uniform draw in `[0, 1)` with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for upstream's
    /// ChaCha12-based `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// Raw generator state, for checkpointing.
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Rebuilds a generator from a raw [`StdRng::state`] value. Unlike
        /// [`SeedableRng::seed_from_u64`] this performs no scrambling: the
        /// restored generator continues the exact stream the snapshotted
        /// one would have produced.
        pub fn from_state(state: u64) -> Self {
            Self { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = 0u64;
            for chunk in seed.chunks(8) {
                let mut bytes = [0u8; 8];
                bytes[..chunk.len()].copy_from_slice(chunk);
                state ^= u64::from_le_bytes(bytes);
            }
            Self::seed_from_u64(state)
        }

        fn seed_from_u64(state: u64) -> Self {
            // One scramble so that seeds 0/1/2... start decorrelated.
            let mut rng = StdRng { state: state ^ 0x5DEE_CE66_D6A5_u64 };
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Distributions.
pub mod distributions {
    use super::{unit_f64, Rng};

    /// A sampling distribution over `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: uniform `[0, 1)` for floats,
    /// uniform over all values for integers and `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f64(rng) as f32
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! standard_int {
        ($($t:ty),* $(,)?) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Sequence helpers.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// Slice element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = SampleRange::sample_single(0..=i, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item> {
            if self.is_empty() {
                None
            } else {
                Some(&self[SampleRange::sample_single(0..self.len(), rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    // `RngCore` must be usable through `&mut` references, as the
    // workspace passes `&mut impl Rng` around liberally.
    use super::RngCore;

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let x: f32 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn state_round_trip_resumes_exact_stream() {
        let mut a = StdRng::seed_from_u64(9);
        let _ = a.next_u64();
        let snapshot = a.state();
        let expected: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let mut b = StdRng::from_state(snapshot);
        let got: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(expected, got);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
