//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the wire codec in `silofuse-distributed` uses:
//! [`Bytes`] (cheaply cloneable, sliceable, with a read cursor via
//! [`Buf`]) and [`BytesMut`] (append-only builder via [`BufMut`]).

use std::sync::Arc;

/// Read-side cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u32`, advancing the cursor.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `f32`, advancing the cursor.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `u64`, advancing the cursor.
    fn get_u64_le(&mut self) -> u64;
}

/// Write-side builder over a growable byte buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);

    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// Immutable, cheaply cloneable view of a byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    /// Read cursor (advanced by `Buf` accessors).
    pos: usize,
    /// One past the last visible byte.
    end: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Visible length (from the cursor to the end).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.end - self.pos
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view over `range` (relative to the current cursor), sharing
    /// the underlying storage.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(range.start <= range.end && self.pos + range.end <= self.end, "slice out of range");
        Self {
            data: Arc::clone(&self.data),
            pos: self.pos + range.start,
            end: self.pos + range.end,
        }
    }

    /// The visible bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self { data: Arc::new(data), pos: 0, end }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underrun");
        let v = self.data[self.pos];
        self.pos += 1;
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "buffer underrun");
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.data[self.pos..self.pos + 4]);
        self.pos += 4;
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "buffer underrun");
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.data[self.pos..self.pos + 8]);
        self.pos += 8;
        u64::from_le_bytes(b)
    }
}

/// Growable byte buffer builder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_cursor() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_f32_le(1.5);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 9);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_f32_le(), 1.5);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slices_share_storage_and_respect_bounds() {
        let bytes = Bytes::from(vec![1, 2, 3, 4, 5]);
        let cut = bytes.slice(1..4);
        assert_eq!(cut.as_slice(), &[2, 3, 4]);
        assert_eq!(bytes.len(), 5, "slicing must not consume the source");
    }
}
