//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), range and tuple
//! strategies, [`collection::vec`], [`strategy::Just`], `any::<bool>()`,
//! `prop_map`/`prop_flat_map`, and the `prop_assert*`/`prop_assume!`
//! macros. Inputs are drawn from a deterministic per-test RNG; there is
//! **no shrinking** — failures report the case number and message only.

pub mod strategy;

/// Runtime pieces: configuration, RNG, and test-case errors.
pub mod test_runner {
    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case was rejected by `prop_assume!` (not counted).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with a message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic SplitMix64 RNG seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test's name (FNV-1a), so every test draws an
        /// independent, reproducible stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Inclusive-exclusive size specification for collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + if span > 0 { rng.below(span) as usize } else { 0 };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut __passed: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(10).saturating_add(100);
                while __passed < __config.cases {
                    assert!(
                        __attempts < __max_attempts,
                        "proptest `{}` rejected too many cases ({} attempts, {} passed)",
                        stringify!($name), __attempts, __passed,
                    );
                    __attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest `{}` failed at case {}: {}", stringify!($name), __passed, msg);
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            __l,
            __r,
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            __l,
        );
    }};
}

/// Rejects the current case (drawn inputs violate a precondition).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..100, 1u32..50).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0usize..10, (lo, hi) in pair(), flag in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert!(lo < hi, "{lo} !< {hi}");
            let _ = flag;
        }

        #[test]
        fn vectors_have_requested_sizes(v in crate::collection::vec(0u8..4, 3..9)) {
            prop_assert!((3..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn flat_map_chains(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u8..2, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }
}
