//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, rejecting (and redrawing) up
    /// to a fixed retry budget.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 consecutive draws", self.whence);
    }
}

macro_rules! int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                let v = self.start + u * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S1, S2)
    (S1, S2, S3)
    (S1, S2, S3, S4)
    (S1, S2, S3, S4, S5)
    (S1, S2, S3, S4, S5, S6)
}
