//! Offline stand-in for `serde_derive`.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]` (no code actually serialises through serde), so these
//! derives expand to nothing. If real serde serialisation is ever needed,
//! replace the `vendor/serde*` stubs with the upstream crates.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
