//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset this workspace's benches use: `Criterion` with
//! `sample_size`/`warm_up_time`/`measurement_time`, benchmark groups with
//! throughput annotations, `Bencher::iter`/`iter_batched`, and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark runs
//! `sample_size` timed iterations (after a single warm-up call) and prints
//! the mean wall-clock time per iteration; there is no statistical
//! analysis, HTML report, or baseline comparison.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the stub warms up with one call.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the stub times a fixed sample count.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, None, &mut f);
        self
    }
}

/// Work-per-iteration annotation used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A named set of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.criterion.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// How per-iteration setup output is batched in `iter_batched`.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// One setup call per timed routine call.
    SmallInput,
    /// Treated identically to `SmallInput` in the stub.
    LargeInput,
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    total: Duration,
}

impl Bencher {
    /// Times `routine` over the configured sample count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total = start.elapsed();
    }

    /// Times `routine` on fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
    }
}

/// Identity function opaque to the optimiser.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher { samples, total: Duration::ZERO };
    f(&mut bencher);
    let mean = bencher.total.as_secs_f64() / samples.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  {:.3} Melem/s", n as f64 / mean / 1e6)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  {:.3} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("{id:<48} {:>12}/iter{rate}", format_time(mean));
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group entry point, mirroring upstream syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_times_all_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut calls = 0u32;
        c.bench_function("counting", |b| b.iter(|| calls += 1));
        // 1 warm-up + 5 timed samples.
        assert_eq!(calls, 6);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0u32;
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(setups, 5);
    }
}
