//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used by
//! this workspace (the byte-accounted transport), so that is all the stub
//! provides, backed by `std::sync::mpsc`. Disconnect semantics match:
//! sending after the peer endpoint is dropped returns an error.

/// Multi-producer channels.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half of an unbounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error: the receiving side hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error: the sending side hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No value arrived within the timeout.
        Timeout,
        /// All senders were dropped.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Sends a value; errors if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next value; errors if all senders were dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive attempt.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.inner.try_recv().map_err(|_| RecvError)
        }

        /// Blocks for the next value at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(41).unwrap();
            assert_eq!(rx.recv(), Ok(41));
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_timeout_times_out_and_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Timeout));
            tx.send(5).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(5));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err::<i32, _>(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn works_across_threads() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || rx.recv().unwrap());
            tx.send(String::from("ping")).unwrap();
            assert_eq!(handle.join().unwrap(), "ping");
        }
    }
}
