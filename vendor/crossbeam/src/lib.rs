//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace uses two slices of the real crate's API, so that is all
//! the stub provides:
//!
//! - `crossbeam::channel::{unbounded, Sender, Receiver}` — the
//!   byte-accounted transport and the kernel work queues. Like the real
//!   crate (and unlike `std::sync::mpsc`), the [`channel::Receiver`] is
//!   `Clone`, so several workers can drain one queue (MPMC). Disconnect
//!   semantics match: sending after every receiver is dropped errors.
//! - `crossbeam::thread::scope` — scoped threads that may borrow stack
//!   data, backed by `std::thread::scope`. Divergence from the real
//!   crate: a panicking child propagates as a panic out of `scope`
//!   rather than surfacing through the returned `Result`.

/// Multi-producer, multi-consumer channels.
pub mod channel {
    use std::sync::{mpsc, Arc, Mutex};
    use std::time::Duration;

    /// Sending half of an unbounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// Receiving half of an unbounded channel.
    ///
    /// Cloneable: clones share one queue, and each message is delivered to
    /// exactly one receiver — the property the parallel kernels rely on to
    /// hand every row block to exactly one worker.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self { inner: Arc::clone(&self.inner) }
        }
    }

    /// Error: the receiving side hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error: the sending side hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No value arrived within the timeout.
        Timeout,
        /// All senders were dropped.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Sends a value; errors if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next value; errors if all senders were dropped.
        ///
        /// Stub caveat: the shared queue lock is held while blocking, so
        /// concurrent receivers serialize. Workloads that drain with
        /// concurrent receivers should use [`Receiver::try_recv`].
        pub fn recv(&self) -> Result<T, RecvError> {
            self.lock().recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive attempt.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.lock().try_recv().map_err(|_| RecvError)
        }

        /// Blocks for the next value at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.lock().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: Arc::new(Mutex::new(rx)) })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(41).unwrap();
            assert_eq!(rx.recv(), Ok(41));
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_timeout_times_out_and_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Timeout));
            tx.send(5).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(5));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err::<i32, _>(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn works_across_threads() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || rx.recv().unwrap());
            tx.send(String::from("ping")).unwrap();
            assert_eq!(handle.join().unwrap(), "ping");
        }

        #[test]
        fn cloned_receivers_partition_the_queue() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let rx2 = rx.clone();
            let h = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx2.try_recv() {
                    got.push(v);
                }
                got
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.try_recv() {
                got.push(v);
            }
            let mut all = got;
            all.extend(h.join().unwrap());
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }
    }
}

/// Scoped threads that may borrow data from the spawning stack frame.
pub mod thread {
    /// A handle for spawning scoped threads; mirrors
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// nested spawns are possible, matching the crossbeam signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; all threads spawned within are joined before
    /// `scope` returns, so they may borrow anything that outlives the call.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_stack_data() {
            let data = [1u64, 2, 3, 4];
            let total: u64 = super::scope(|s| {
                let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 10)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 100);
        }

        #[test]
        fn nested_spawn_through_scope_argument() {
            let n = super::scope(|s| s.spawn(|s2| s2.spawn(|_| 7).join().unwrap()).join().unwrap())
                .unwrap();
            assert_eq!(n, 7);
        }
    }
}
