//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s ergonomics: `lock()`
//! returns the guard directly (poisoning is swallowed, matching
//! `parking_lot`'s poison-free behaviour).

use std::sync;

/// Mutual exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
