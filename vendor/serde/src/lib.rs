//! Offline stand-in for `serde`.
//!
//! The workspace tags a handful of schema types with `#[derive(Serialize,
//! Deserialize)]` but never serialises through serde, so the traits are
//! empty markers and the derives (re-exported from the stub
//! `serde_derive`) expand to nothing.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
