//! Property-based invariants of the data layer: vertical partitioning,
//! feature encodings, the copula generator, and the wire codec.

use proptest::prelude::*;
use silofuse_core::distributed::Message;
use silofuse_core::tabular::encode::{ScalingKind, TableEncoder};
use silofuse_core::tabular::partition::{PartitionPlan, PartitionStrategy};
use silofuse_core::tabular::schema::{ColumnMeta, Schema};
use silofuse_core::tabular::table::{Column, Table};

/// Strategy: a small random mixed-type table.
fn arb_table() -> impl Strategy<Value = Table> {
    (2usize..40, 1usize..10, 0u64..1000).prop_flat_map(|(rows, cols, seed)| {
        let col_kinds = proptest::collection::vec(0u8..2, cols);
        (Just(rows), col_kinds, Just(seed)).prop_map(|(rows, kinds, seed)| {
            let mut metas = Vec::new();
            let mut columns = Vec::new();
            for (i, kind) in kinds.iter().enumerate() {
                if *kind == 0 {
                    metas.push(ColumnMeta::numeric(format!("n{i}")));
                    columns.push(Column::Numeric(
                        (0..rows)
                            .map(|r| ((r as f64 + seed as f64) * 0.37 + i as f64).sin() * 10.0)
                            .collect(),
                    ));
                } else {
                    let card = 2 + (i as u32 % 5);
                    metas.push(ColumnMeta::categorical(format!("c{i}"), card));
                    columns.push(Column::Categorical(
                        (0..rows).map(|r| ((r + i + seed as usize) as u32) % card).collect(),
                    ));
                }
            }
            Table::new(Schema::new(metas), columns).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// split → reassemble is the identity for any table, client count, and
    /// partition strategy.
    #[test]
    fn partition_round_trip(table in arb_table(), clients in 1usize..6, seed in 0u64..100,
                            permuted in any::<bool>()) {
        prop_assume!(clients <= table.n_cols());
        let strategy = if permuted {
            PartitionStrategy::Permuted { seed }
        } else {
            PartitionStrategy::Default
        };
        let plan = PartitionPlan::new(table.n_cols(), clients, strategy);
        let parts = plan.split(&table);
        // Every column appears exactly once across partitions.
        let total: usize = parts.iter().map(Table::n_cols).sum();
        prop_assert_eq!(total, table.n_cols());
        let back = plan.reassemble(&parts.iter().collect::<Vec<_>>());
        prop_assert_eq!(back, table);
    }

    /// Encode → decode round-trips categoricals exactly and numerics within
    /// tolerance, for every scaling kind.
    #[test]
    fn encoder_round_trip(table in arb_table(), kind in 0u8..3) {
        let scaling = match kind {
            0 => ScalingKind::Standard,
            1 => ScalingKind::MinMax,
            _ => ScalingKind::QuantileGaussian,
        };
        let enc = TableEncoder::fit(&table, scaling);
        let data = enc.encode(&table);
        prop_assert_eq!(data.len(), table.n_rows() * enc.encoded_width());
        prop_assert!(data.iter().all(|v| v.is_finite()));
        let back = enc.decode(&data).unwrap();
        for (orig, rec) in table.columns().iter().zip(back.columns()) {
            match (orig, rec) {
                (Column::Categorical(a), Column::Categorical(b)) => prop_assert_eq!(a, b),
                (Column::Numeric(a), Column::Numeric(b)) => {
                    let range = a.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                        - a.iter().cloned().fold(f64::INFINITY, f64::min);
                    // The quantile transform interpolates the empirical CDF,
                    // so its inverse error shrinks with sample size; allow a
                    // 1/n term on top of the 5% band.
                    let tol = range.max(1.0) * (0.05 + 2.0 / a.len() as f64) + 1e-6;
                    for (x, y) in a.iter().zip(b) {
                        prop_assert!((x - y).abs() <= tol,
                            "numeric round trip {x} -> {y} (tol {tol})");
                    }
                }
                _ => prop_assert!(false, "kind flip"),
            }
        }
    }

    /// One-hot width equals the sum of per-column one-hot widths, always.
    #[test]
    fn one_hot_width_is_additive(table in arb_table()) {
        let total: usize = table
            .schema()
            .columns()
            .iter()
            .map(|c| c.kind.one_hot_width())
            .sum();
        prop_assert_eq!(table.schema().one_hot_width(), total);
    }

    /// The wire codec is lossless and its size report is exact.
    #[test]
    fn codec_round_trip(client in 0u32..16, rows in 1u32..32, cols in 1u32..16,
                        fill in -100.0f32..100.0) {
        let data = vec![fill; (rows * cols) as usize];
        let msg = Message::LatentUpload { client, rows, cols, data };
        let encoded = msg.encode();
        prop_assert_eq!(encoded.len(), msg.wire_size());
        prop_assert_eq!(Message::decode(encoded).unwrap(), msg);
    }

    /// Row selection preserves per-row content for any index multiset.
    #[test]
    fn select_rows_is_consistent(table in arb_table(),
                                 picks in proptest::collection::vec(0usize..1000, 1..20)) {
        let n = table.n_rows();
        let idx: Vec<usize> = picks.into_iter().map(|p| p % n).collect();
        let sel = table.select_rows(&idx);
        prop_assert_eq!(sel.n_rows(), idx.len());
        for (new_r, &old_r) in idx.iter().enumerate() {
            for (col_new, col_old) in sel.columns().iter().zip(table.columns()) {
                match (col_new, col_old) {
                    (Column::Numeric(a), Column::Numeric(b)) =>
                        prop_assert_eq!(a[new_r], b[old_r]),
                    (Column::Categorical(a), Column::Categorical(b)) =>
                        prop_assert_eq!(a[new_r], b[old_r]),
                    _ => prop_assert!(false),
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The copula generator always produces schema-valid tables whose
    /// categorical codes respect the declared cardinalities.
    #[test]
    fn generator_output_is_always_valid(seed in 0u64..50, rows in 1usize..200,
                                        strength in 0.0f64..0.9) {
        use silofuse_core::tabular::synthetic::{GeneratorConfig, Marginal, TaskKind};
        let cfg = GeneratorConfig {
            marginals: vec![
                ("a".into(), Marginal::Gaussian { mean: 0.0, std: 1.0 }),
                ("b".into(), Marginal::Categorical { weights: vec![1.0, 2.0, 3.0] }),
                ("c".into(), Marginal::LogNormal { mu: 0.0, sigma: 0.4 }),
            ],
            task: TaskKind::Classification { classes: 3 },
            correlation_strength: strength,
            seed,
        };
        let t = cfg.generate(rows, seed ^ 7);
        prop_assert_eq!(t.n_rows(), rows);
        let codes = t.column(1).as_categorical().unwrap();
        prop_assert!(codes.iter().all(|&c| c < 3));
        let target = t.column(3).as_categorical().unwrap();
        prop_assert!(target.iter().all(|&c| c < 3));
        let ln = t.column(2).as_numeric().unwrap();
        prop_assert!(ln.iter().all(|&v| v > 0.0 && v.is_finite()));
    }
}
