//! Integration tests of the multi-tenant synthesis service: cursor
//! pagination must be byte-identical under ANY split of a job's row
//! range — across streamed chunk boundaries, nn-backend thread counts,
//! and full server restarts (registry reload from checkpoints) — and
//! overload must answer with a typed rejection instead of queueing.

use proptest::prelude::*;
use silofuse_core::serve::{ModelRegistry, ModelSpec, ServeConfig, ServeError, SynthesisServer};
use silofuse_core::TrainBudget;
use silofuse_distributed::ServeRejectCode;
use silofuse_tabular::Table;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

/// Small enough to fit in seconds, real enough to exercise both phases.
fn tiny_budget() -> TrainBudget {
    TrainBudget::quick().scaled_down(8)
}

fn specs() -> Vec<ModelSpec> {
    vec![ModelSpec::new("loan", "Loan", 128, 11, tiny_budget())]
}

fn serve_config(chunk_rows: usize) -> ServeConfig {
    ServeConfig { chunk_rows, ..ServeConfig::default() }
}

/// Checkpoints of one trained registry, shared by every pagination case;
/// each `ModelRegistry::open` over it is a bit-identical fast-forward —
/// exactly what a server restart does.
fn trained_dir() -> &'static PathBuf {
    static TRAINED: OnceLock<PathBuf> = OnceLock::new();
    TRAINED.get_or_init(|| {
        let dir =
            std::env::temp_dir().join(format!("silofuse-serve-pagination-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let registry =
            ModelRegistry::open(Some(&dir), 25, &specs()).expect("initial training must succeed");
        assert_eq!(registry.len(), 1);
        dir
    })
}

/// Fetches rows `start..start+rows` of `job` on a freshly restarted
/// server (new registry instance loaded from the shared checkpoints).
fn fetch_on_fresh_server(job: u64, start: u64, rows: u32) -> Result<Table, ServeError> {
    let registry = ModelRegistry::open(Some(trained_dir()), 25, &specs())?;
    let mut server = SynthesisServer::new(registry, serve_config(16))?;
    let client = server.connect("paginator");
    let model = client.model_id("loan").expect("loan is cataloged");
    let table = client.fetch(model, job, start, rows);
    drop(client);
    server.shutdown();
    table
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The acceptance property: ANY split of `n` rows into cursor-resumed
    /// fetches — every fetch on its own restarted server — reassembles
    /// into exactly the table a single fetch returns, at 1, 2, and 4
    /// backend threads.
    #[test]
    fn any_cursor_split_across_restarts_and_threads_matches_one_fetch(
        n in 8u32..48,
        raw_cuts in proptest::collection::vec(1u32..48, 0..3),
        job in 0u64..1_000_000,
    ) {
        let mut cuts: Vec<u32> = raw_cuts.iter().map(|c| c % n).filter(|c| *c != 0).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut bounds = vec![0u32];
        bounds.extend(cuts);
        bounds.push(n);

        let mut per_thread_count: Vec<Table> = Vec::new();
        for threads in [1usize, 2, 4] {
            silofuse_nn::backend::set_threads(threads);
            let reference = fetch_on_fresh_server(job, 0, n)
                .map_err(|e| TestCaseError::fail(format!("reference fetch: {e}")))?;
            prop_assert_eq!(reference.n_rows(), n as usize);

            let mut parts = Vec::new();
            for w in bounds.windows(2) {
                let part = fetch_on_fresh_server(job, u64::from(w[0]), w[1] - w[0])
                    .map_err(|e| TestCaseError::fail(format!("fetch [{}, {}): {e}", w[0], w[1])))?;
                parts.push(part);
            }
            let refs: Vec<&Table> = parts.iter().collect();
            let stitched = Table::concat_rows(&refs);
            prop_assert_eq!(&stitched, &reference);
            per_thread_count.push(reference);
        }
        // And the three thread counts agree with each other bit for bit.
        prop_assert_eq!(&per_thread_count[0], &per_thread_count[1]);
        prop_assert_eq!(&per_thread_count[1], &per_thread_count[2]);
    }
}

#[test]
fn overload_answers_a_typed_rejection_instead_of_queueing() {
    let registry = ModelRegistry::open(None, 50, &specs()).expect("training must succeed");
    let mut server = SynthesisServer::new(
        registry,
        ServeConfig {
            max_in_flight: 1,
            per_tenant_max: 1,
            chunk_rows: 8,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let busy = server.connect("acme");
    let probe = server.connect("acme"); // second connection, same quota
    let model = busy.model_id("loan").unwrap();

    // A long job: thousands of rows in 8-row chunks keeps the only
    // in-flight slot occupied for a while.
    let big = std::thread::spawn(move || busy.fetch(model, 1, 0, 3000));
    std::thread::sleep(Duration::from_millis(200));

    // While it runs, the same tenant's second connection must be told
    // "overloaded" immediately — the request is answered, not parked.
    match probe.fetch(model, 2, 0, 1) {
        Err(ServeError::Rejected { job: 2, code: ServeRejectCode::Overloaded }) => {}
        Ok(_) => panic!("probe was served while the quota was exhausted"),
        Err(e) => panic!("expected a typed Overloaded rejection, got {e}"),
    }

    let served = big.join().expect("busy tenant panicked").expect("big job must complete");
    assert_eq!(served.n_rows(), 3000);

    // Capacity freed: the probe's retry succeeds. The final chunk can
    // reach the client a beat before the server releases the permit, so
    // honor the contract and back off between attempts.
    let mut retry = probe.fetch(model, 3, 0, 4);
    for _ in 0..200 {
        match &retry {
            Err(ServeError::Rejected { code: ServeRejectCode::Overloaded, .. }) => {
                std::thread::sleep(Duration::from_millis(10));
                retry = probe.fetch(model, 3, 0, 4);
            }
            _ => break,
        }
    }
    assert_eq!(retry.expect("retry after back-off must be admitted").n_rows(), 4);
    drop(probe);
    server.shutdown();
}

#[test]
fn zero_chunk_rows_is_a_typed_error_at_every_layer() {
    // Serve config: the server refuses to start.
    let registry = ModelRegistry::open(None, 50, &specs()).expect("training must succeed");
    let err = SynthesisServer::new(registry, ServeConfig { chunk_rows: 0, ..Default::default() })
        .err()
        .expect("zero chunk_rows must not start a server");
    assert!(matches!(err, ServeError::Config(_)), "{err}");

    // Model config: the old `.max(1)` clamp is gone — a zero
    // `synth_chunk_rows` is rejected at the request boundary.
    use rand::{rngs::StdRng, SeedableRng};
    use silofuse_core::diffusion::SampleRequestError;
    use silofuse_core::models::LatentDiff;
    let mut cfg = tiny_budget().latent_config(3);
    cfg.synth_chunk_rows = 0;
    let table = silofuse_tabular::profiles::profile_by_name("Loan").unwrap().generate(64, 3);
    let mut model = LatentDiff::new(cfg);
    let mut rng = StdRng::seed_from_u64(3);
    model.fit(&table, &mut rng);
    let err = model.try_synthesize_with_steps(8, None, &mut rng).err().unwrap();
    assert!(matches!(err, SampleRequestError::ChunkRows(_)), "{err}");
    let err = model.try_synthesize_range(0, 8, 7).err().unwrap();
    assert!(matches!(err, SampleRequestError::ChunkRows(_)), "{err}");
}

#[test]
fn catalog_rejects_unknown_models_client_side() {
    let registry = ModelRegistry::open(None, 50, &specs()).expect("training must succeed");
    let mut server = SynthesisServer::new(registry, serve_config(32)).unwrap();
    let client = server.connect("curious");
    assert!(client.model_id("no-such-model").is_none());
    let err = client.fetch(99, 1, 0, 8).expect_err("uncataloged id must fail");
    assert!(matches!(err, ServeError::Protocol(_)), "{err}");
    drop(client);
    server.shutdown();
}
