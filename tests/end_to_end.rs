//! End-to-end integration: the full SiloFuse pipeline through the public
//! API, spanning tabular → models → distributed → metrics.

use rand::rngs::StdRng;
use rand::SeedableRng;
use silofuse_core::{SiloFuse, SiloFuseConfig, TrainBudget};
use silofuse_metrics::{
    privacy, resemblance, utility, PrivacyConfig, ResemblanceConfig, UtilityConfig,
};
use silofuse_tabular::partition::PartitionStrategy;
use silofuse_tabular::profiles;

fn quick_model(seed: u64) -> SiloFuseConfig {
    SiloFuseConfig {
        n_clients: 4,
        strategy: PartitionStrategy::Default,
        model: TrainBudget::quick().scaled_down(2).latent_config(seed),
    }
}

#[test]
fn silofuse_full_pipeline_produces_usable_synthetic_data() {
    let profile = profiles::loan();
    let train = profile.generate(512, 100);
    let holdout = profile.generate(256, 101);
    let mut rng = StdRng::seed_from_u64(100);

    let mut model = SiloFuse::new(quick_model(100));
    model.fit(&train, &mut rng);

    // Stacked training communicated exactly once.
    let stats = model.comm_stats();
    assert_eq!(stats.rounds, 1);
    assert!(stats.bytes_up > 0);
    assert_eq!(stats.bytes_down, 0);

    let synth = model.synthesize(512, &mut rng);
    assert_eq!(synth.schema(), train.schema());
    assert_eq!(synth.n_rows(), 512);

    // Quality floor: even a quick run must clearly beat garbage.
    let r = resemblance(&train, &synth, &ResemblanceConfig::default());
    assert!(r.composite > 50.0, "resemblance {}", r.composite);

    let u = utility(&train, &synth, &holdout, &UtilityConfig::default());
    assert!(u.score > 30.0, "utility {}", u.score);

    let p = privacy(&train, &synth, &PrivacyConfig { attempts: 60, ..Default::default() });
    assert!(p.composite > 20.0, "privacy {}", p.composite);
}

#[test]
fn partitioned_synthesis_preserves_vertical_privacy_layout() {
    let profile = profiles::diabetes();
    let train = profile.generate(256, 200);
    let mut rng = StdRng::seed_from_u64(200);

    let mut config = quick_model(200);
    config.n_clients = 3;
    let mut model = SiloFuse::new(config);
    model.fit(&train, &mut rng);

    let parts = model.synthesize_partitioned(64, &mut rng);
    assert_eq!(parts.len(), 3);
    let plan = model.partition_plan().unwrap().clone();
    // Each client's synthetic partition matches its assigned columns.
    for (part, cols) in parts.iter().zip(plan.assignments()) {
        assert_eq!(part.n_cols(), cols.len());
        assert_eq!(part.n_rows(), 64);
        for (meta, &orig) in part.schema().columns().iter().zip(cols) {
            assert_eq!(meta, &train.schema().columns()[orig]);
        }
    }
}

#[test]
fn permuted_partitioning_reassembles_original_order() {
    let profile = profiles::loan();
    let train = profile.generate(256, 300);
    let mut rng = StdRng::seed_from_u64(300);

    let mut config = quick_model(300);
    config.strategy = PartitionStrategy::Permuted { seed: 12343 };
    let mut model = SiloFuse::new(config);
    model.fit(&train, &mut rng);
    let synth = model.synthesize(64, &mut rng);
    assert_eq!(synth.schema(), train.schema());
}

#[test]
fn varying_inference_steps_changes_output_noise() {
    let profile = profiles::diabetes();
    let train = profile.generate(256, 400);
    let mut rng = StdRng::seed_from_u64(400);
    let mut model = SiloFuse::new(quick_model(400));
    model.fit(&train, &mut rng);

    // Fewer denoising steps = noisier output = lower resemblance
    // (Table VII's mechanism). Use a clearly separated pair.
    let coarse = model.synthesize_with_steps(512, 2, &mut rng);
    let fine = model.synthesize_with_steps(512, 25, &mut rng);
    let r_coarse = resemblance(&train, &coarse, &ResemblanceConfig::default());
    let r_fine = resemblance(&train, &fine, &ResemblanceConfig::default());
    assert!(
        r_fine.composite >= r_coarse.composite - 2.0,
        "25-step sampling ({}) should not lose badly to 2-step ({})",
        r_fine.composite,
        r_coarse.composite
    );
}

#[test]
fn comm_stats_grow_only_with_synthesis_after_training() {
    let profile = profiles::diabetes();
    let train = profile.generate(192, 500);
    let mut rng = StdRng::seed_from_u64(500);
    let mut model = SiloFuse::new(quick_model(500));
    model.fit(&train, &mut rng);
    let after_fit = model.comm_stats();
    let _ = model.synthesize(32, &mut rng);
    let after_synth = model.comm_stats();
    assert_eq!(after_fit.bytes_up + 9, after_synth.bytes_up, "only the 9-byte request goes up");
    assert!(after_synth.bytes_down > after_fit.bytes_down, "latents ship down");
}
