//! Integration tests of the paper's communication claims (Fig. 10) through
//! the public distributed API.

use rand::rngs::StdRng;
use rand::SeedableRng;
use silofuse_core::distributed::e2e_distr::E2eDistributed;
use silofuse_core::distributed::stacked::SiloFuseModel;
use silofuse_core::TrainBudget;
use silofuse_tabular::partition::{PartitionPlan, PartitionStrategy};
use silofuse_tabular::profiles;

fn partitions(rows: usize, clients: usize, seed: u64) -> Vec<silofuse_tabular::Table> {
    let t = profiles::loan().generate(rows, seed);
    PartitionPlan::new(t.n_cols(), clients, PartitionStrategy::Default).split(&t)
}

fn config(
    ae_steps: usize,
    diffusion_steps: usize,
    seed: u64,
) -> silofuse_core::models::LatentDiffConfig {
    let mut cfg = TrainBudget::quick().scaled_down(4).latent_config(seed);
    cfg.ae_steps = ae_steps;
    cfg.diffusion_steps = diffusion_steps;
    cfg
}

#[test]
fn stacked_cost_is_constant_in_iterations_e2e_cost_is_linear() {
    let parts = partitions(128, 4, 1);
    let mut rng = StdRng::seed_from_u64(1);

    let sf_short = SiloFuseModel::fit(&parts, config(10, 10, 1), &mut rng);
    let sf_long = SiloFuseModel::fit(&parts, config(80, 80, 1), &mut rng);
    assert_eq!(
        sf_short.comm_stats().total_bytes(),
        sf_long.comm_stats().total_bytes(),
        "SiloFuse communication must not grow with iterations"
    );

    let e2e_short = E2eDistributed::fit(&parts, config(5, 5, 1), &mut rng);
    let e2e_long = E2eDistributed::fit(&parts, config(20, 20, 1), &mut rng);
    assert_eq!(
        e2e_long.comm_stats().total_bytes(),
        4 * e2e_short.comm_stats().total_bytes(),
        "E2EDistr communication must be linear in iterations"
    );
}

#[test]
fn stacked_upload_bytes_scale_with_rows_not_steps() {
    let mut rng = StdRng::seed_from_u64(2);
    let small = SiloFuseModel::fit(&partitions(64, 2, 2), config(10, 10, 2), &mut rng);
    let big = SiloFuseModel::fit(&partitions(128, 2, 2), config(10, 10, 2), &mut rng);
    let b_small = small.comm_stats().bytes_up;
    let b_big = big.comm_stats().bytes_up;
    // Latent payload doubles with rows (headers are constant).
    assert!(b_big > b_small, "{b_big} !> {b_small}");
    let payload_small = b_small - 2 * 13;
    let payload_big = b_big - 2 * 13;
    assert_eq!(payload_big, 2 * payload_small);
}

#[test]
fn e2e_per_iteration_bytes_scale_with_batch_size() {
    let parts = partitions(128, 2, 3);
    let mut rng = StdRng::seed_from_u64(3);
    let mut small = config(5, 5, 3);
    small.batch_size = 16;
    let mut big = config(5, 5, 3);
    big.batch_size = 32;
    let m_small = E2eDistributed::fit(&parts, small, &mut rng);
    let m_big = E2eDistributed::fit(&parts, big, &mut rng);
    // Per-round payload is proportional to the batch (headers constant).
    assert!(m_big.bytes_per_iteration() > 1.9 * (m_small.bytes_per_iteration() - 60.0));
}

#[test]
fn message_counts_match_protocol_structure() {
    let parts = partitions(96, 3, 4);
    let mut rng = StdRng::seed_from_u64(4);
    let steps = 7usize;
    let model = E2eDistributed::fit(&parts, config(3, 4, 4), &mut rng);
    let stats = model.comm_stats();
    // Per step: 3 activation uploads + 3 gradient downloads.
    assert_eq!(stats.messages_up, (steps * 3) as u64);
    assert_eq!(stats.messages_down, (steps * 3) as u64);
    assert_eq!(stats.rounds, steps as u64);
}

#[test]
fn both_protocols_share_synthesis_quality_path() {
    // Synthesis after either protocol yields schema-valid partitioned data.
    let parts = partitions(96, 2, 5);
    let mut rng = StdRng::seed_from_u64(5);
    let mut sf = SiloFuseModel::fit(&parts, config(20, 20, 5), &mut rng);
    let mut e2e = E2eDistributed::fit(&parts, config(20, 20, 5), &mut rng);
    let sf_parts = sf.synthesize_partitioned(16, 0, &mut rng);
    let e2e_parts = e2e.synthesize_partitioned(16, &mut rng);
    for ((a, b), orig) in sf_parts.iter().zip(&e2e_parts).zip(&parts) {
        assert_eq!(a.schema(), orig.schema());
        assert_eq!(b.schema(), orig.schema());
    }
}
