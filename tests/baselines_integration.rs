//! Cross-crate integration of the seven-model benchmark grid: every model
//! must fit, synthesize schema-valid data, and score through the full
//! metric stack.

use rand::rngs::StdRng;
use rand::SeedableRng;
use silofuse_core::pipeline::{evaluate_model, DatasetRun, RunConfig};
use silofuse_core::{build_synthesizer, ModelKind, TrainBudget};
use silofuse_metrics::{resemblance, ResemblanceConfig};
use silofuse_tabular::partition::PartitionStrategy;
use silofuse_tabular::profiles;

fn tiny_run(seed: u64) -> RunConfig {
    let mut cfg = RunConfig::quick(seed);
    cfg.budget = TrainBudget::quick().scaled_down(4);
    cfg.train_rows = 192;
    cfg.holdout_rows = 96;
    cfg.synth_rows = 192;
    cfg
}

#[test]
fn every_model_completes_the_scoring_pipeline() {
    let profile = profiles::loan();
    let cfg = tiny_run(1);
    let run = DatasetRun::prepare(&profile, &cfg);
    for kind in ModelKind::all() {
        let scores = evaluate_model(kind, &run, &cfg, false);
        assert!(
            scores.resemblance.composite.is_finite()
                && (0.0..=100.0).contains(&scores.resemblance.composite),
            "{}: resemblance {:?}",
            kind.name(),
            scores.resemblance
        );
        assert!(
            (0.0..=100.0).contains(&scores.utility.score),
            "{}: utility {:?}",
            kind.name(),
            scores.utility.score
        );
    }
}

#[test]
fn diffusion_models_beat_an_untrained_gan_on_resemblance() {
    // The paper's central quantitative claim in miniature: give the latent
    // diffusion model a real budget and the GAN almost none — the diffusion
    // model must win. (Full-budget comparisons live in the table3 binary.)
    let profile = profiles::diabetes();
    let train = profile.generate(384, 2);
    let mut rng = StdRng::seed_from_u64(2);

    let budget = TrainBudget::quick();
    let mut latent =
        build_synthesizer(ModelKind::LatentDiff, &budget, 4, PartitionStrategy::Default, 2);
    latent.fit(&train, &mut rng);
    let synth_latent = latent.synthesize(384, &mut rng);

    let starved = TrainBudget::quick().scaled_down(100);
    let mut gan =
        build_synthesizer(ModelKind::GanLinear, &starved, 4, PartitionStrategy::Default, 2);
    gan.fit(&train, &mut rng);
    let synth_gan = gan.synthesize(384, &mut rng);

    let r_latent = resemblance(&train, &synth_latent, &ResemblanceConfig::default());
    let r_gan = resemblance(&train, &synth_gan, &ResemblanceConfig::default());
    assert!(
        r_latent.composite > r_gan.composite,
        "latent diffusion {} must beat starved GAN {}",
        r_latent.composite,
        r_gan.composite
    );
}

#[test]
fn silofuse_tracks_latentdiff_within_tolerance() {
    // Claim 2 of the paper: the distributed model is competitive with its
    // centralized counterpart. On a quick budget we allow a wide margin but
    // the gap must not be catastrophic.
    let profile = profiles::loan();
    let cfg = tiny_run(3);
    let run = DatasetRun::prepare(&profile, &cfg);
    let central = evaluate_model(ModelKind::LatentDiff, &run, &cfg, false);
    let distributed = evaluate_model(ModelKind::SiloFuse, &run, &cfg, false);
    let gap = central.resemblance.composite - distributed.resemblance.composite;
    assert!(
        gap < 25.0,
        "SiloFuse ({}) fell too far below LatentDiff ({})",
        distributed.resemblance.composite,
        central.resemblance.composite
    );
}

#[test]
fn distributed_models_accept_eight_clients() {
    let profile = profiles::heloc(); // 24 columns: room for 8 clients
    let mut cfg = tiny_run(4);
    cfg.n_clients = 8;
    let run = DatasetRun::prepare(&profile, &cfg);
    for kind in [ModelKind::SiloFuse, ModelKind::E2eDistr] {
        let scores = evaluate_model(kind, &run, &cfg, false);
        assert!(scores.resemblance.composite > 0.0, "{}", kind.name());
    }
}

#[test]
fn model_names_match_paper_tables() {
    let names: Vec<&str> = ModelKind::all().iter().map(|k| k.name()).collect();
    assert_eq!(
        names,
        vec!["GAN(conv)", "GAN(linear)", "E2E", "E2EDistr", "TabDDPM", "LatentDiff", "SiloFuse"]
    );
}
