//! Quickstart: train SiloFuse on a vertically partitioned dataset and
//! synthesize shareable data in under a minute.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use silofuse_core::{SiloFuse, SiloFuseConfig, TrainBudget};
use silofuse_metrics::{resemblance, ResemblanceConfig};
use silofuse_tabular::profiles;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. A dataset with the schema statistics of the paper's Loan benchmark
    //    (5k rows, 7 categorical + 6 numeric features, binary label).
    let profile = profiles::loan();
    let data = profile.generate(2048, 42);
    println!(
        "dataset: {} ({} rows, {} columns, one-hot width {})",
        profile.name,
        data.n_rows(),
        data.n_cols(),
        data.schema().one_hot_width()
    );

    // 2. Train SiloFuse: 4 silos, stacked training (one communication round).
    let config = SiloFuseConfig {
        model: TrainBudget::quick().latent_config(42),
        ..SiloFuseConfig::quick(42)
    };
    let mut model = SiloFuse::new(config);
    model.fit(&data, &mut rng);
    let stats = model.comm_stats();
    println!(
        "trained across 4 silos: {} communication round(s), {} bytes up / {} bytes down",
        stats.rounds, stats.bytes_up, stats.bytes_down
    );

    // 3. Synthesize and score.
    let synthetic = model.synthesize(1024, &mut rng);
    let report = resemblance(&data, &synthetic, &ResemblanceConfig::default());
    println!("synthesized {} rows with the original schema", synthetic.n_rows());
    println!(
        "resemblance: composite {:.1} (column {:.1}, correlation {:.1}, JS {:.1}, KS {:.1}, propensity {:.1})",
        report.composite,
        report.column_similarity,
        report.correlation_similarity,
        report.jensen_shannon,
        report.kolmogorov_smirnov,
        report.propensity
    );
}
