//! Communication audit: why stacked training wins (§V-E / Fig. 10).
//!
//! Trains SiloFuse and the end-to-end distributed baseline (E2EDistr) on
//! the same partitions with byte-accurate wire accounting, then
//! extrapolates E2EDistr's measured per-iteration cost to the paper's
//! 50k / 500k / 5M iteration counts.
//!
//! ```bash
//! cargo run --release --example communication_audit
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use silofuse_core::TrainBudget;
use silofuse_distributed::e2e_distr::E2eDistributed;
use silofuse_distributed::stacked::SiloFuseModel;
use silofuse_tabular::partition::{PartitionPlan, PartitionStrategy};
use silofuse_tabular::profiles;

fn human_bytes(b: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = b;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.2} {}", UNITS[unit])
}

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let profile = profiles::abalone();
    let table = profile.generate(1024, 5);
    let plan = PartitionPlan::new(table.n_cols(), 4, PartitionStrategy::Default);
    let partitions = plan.split(&table);
    println!(
        "dataset {} | {} rows | 4 clients | per-client features: {:?}",
        profile.name,
        table.n_rows(),
        plan.assignments().iter().map(Vec::len).collect::<Vec<_>>()
    );

    // SiloFuse: bytes are fixed — one latent upload per client, ever.
    let config = TrainBudget::quick().latent_config(5);
    let silofuse = SiloFuseModel::fit(&partitions, config, &mut rng);
    let sf = silofuse.comm_stats();
    println!(
        "\nSiloFuse (stacked): {} round, {} on the wire — constant in #iterations",
        sf.rounds,
        human_bytes(sf.total_bytes() as f64)
    );

    // E2EDistr: measure a short run, extrapolate per-iteration cost.
    let mut short = config;
    short.ae_steps = 25;
    short.diffusion_steps = 25;
    let e2e = E2eDistributed::fit(&partitions, short, &mut rng);
    let per_iter = e2e.bytes_per_iteration();
    println!(
        "E2EDistr: measured {} per iteration (activations up + gradients down)",
        human_bytes(per_iter)
    );
    println!("\nprojected wire cost at the paper's iteration counts (Fig. 10):");
    println!("{:>12} | {:>14} | {:>14}", "iterations", "SiloFuse", "E2EDistr");
    for iters in [50_000u64, 500_000, 5_000_000] {
        println!(
            "{:>12} | {:>14} | {:>14}",
            iters,
            human_bytes(sf.total_bytes() as f64),
            human_bytes(per_iter * iters as f64)
        );
    }
    println!(
        "\ncrossover: stacked training amortises after {} iterations",
        (sf.total_bytes() as f64 / per_iter).ceil()
    );
}
