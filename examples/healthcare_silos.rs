//! The paper's motivating scenario (Fig. 1): a cardiac centre and a
//! psychiatric centre hold different features of the same patients and want
//! to collaborate without sharing raw records.
//!
//! This example builds the two-silo dataset explicitly (no profile), trains
//! SiloFuse on the *pre-partitioned* tables through the distributed API,
//! keeps the synthetic output vertically partitioned, and shows that
//! cross-silo correlations (heart rate ↔ stress level) survive synthesis
//! even though neither silo ever saw the other's data.
//!
//! ```bash
//! cargo run --release --example healthcare_silos
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use silofuse_core::TrainBudget;
use silofuse_distributed::stacked::SiloFuseModel;
use silofuse_metrics::correlation::association;
use silofuse_tabular::synthetic::{GeneratorConfig, Marginal, TaskKind};
use silofuse_tabular::table::Table;

fn patient_population() -> GeneratorConfig {
    GeneratorConfig {
        marginals: vec![
            // --- Cardiac centre (client 1) ---
            ("heart_rate".into(), Marginal::Gaussian { mean: 74.0, std: 11.0 }),
            ("systolic_bp".into(), Marginal::Gaussian { mean: 122.0, std: 14.0 }),
            ("cholesterol".into(), Marginal::LogNormal { mu: 5.3, sigma: 0.2 }),
            ("arrhythmia".into(), Marginal::Categorical { weights: vec![8.0, 1.5, 0.5] }),
            // --- Psychiatric centre (client 2) ---
            ("stress_level".into(), Marginal::Uniform { lo: 0.0, hi: 10.0 }),
            ("sleep_hours".into(), Marginal::Gaussian { mean: 6.8, std: 1.2 }),
            ("medication".into(), Marginal::Categorical { weights: vec![5.0, 3.0, 1.0, 1.0] }),
        ],
        task: TaskKind::Classification { classes: 2 }, // joint-treatment indicator
        correlation_strength: 0.75,
        seed: 2024,
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let population = patient_population();
    let joined = population.generate(2048, 7);

    // Vertical partition: cardiac features (+ the shared outcome) vs
    // psychiatric features. In production these tables never co-exist;
    // here we split them to simulate the two sites.
    let cardiac = joined.project(&[0, 1, 2, 3]);
    let psychiatric = joined.project(&[4, 5, 6, 7]);
    println!(
        "cardiac silo: {} columns | psychiatric silo: {} columns | {} aligned patients",
        cardiac.n_cols(),
        psychiatric.n_cols(),
        joined.n_rows()
    );

    // Train the distributed model directly on the partitions.
    let config = TrainBudget::quick().latent_config(7);
    let partitions = [cardiac.clone(), psychiatric.clone()];
    let mut model = SiloFuseModel::fit(&partitions, config, &mut rng);
    let stats = model.comm_stats();
    println!(
        "stacked training finished: {} round(s), {} KiB uploaded total",
        stats.rounds,
        stats.bytes_up / 1024
    );

    // Synthesis keeps the partition: each centre receives only its own
    // synthetic features (Algorithm 2).
    let synth_parts = model.synthesize_partitioned(1024, 1, &mut rng);
    println!(
        "synthetic output stays partitioned: cardiac {}x{}, psychiatric {}x{}",
        synth_parts[0].n_rows(),
        synth_parts[0].n_cols(),
        synth_parts[1].n_rows(),
        synth_parts[1].n_cols()
    );

    // Cross-silo correlation check: heart_rate (silo 1) vs stress_level
    // (silo 2). Join the synthetic partitions only for this audit.
    let synth_joined = Table::concat_columns(&[&synth_parts[0], &synth_parts[1]]);
    let hr = joined.schema().index_of("heart_rate").unwrap();
    let stress = joined.schema().index_of("stress_level").unwrap();
    let real_assoc = association(&joined, hr, stress);
    let synth_assoc = association(&synth_joined, hr, stress);
    println!(
        "heart_rate <-> stress_level association: real {real_assoc:.3}, synthetic {synth_assoc:.3}"
    );
    println!(
        "cross-silo correlation preserved within |delta| = {:.3} — captured in the shared \
         latent space without either silo exposing raw features",
        (real_assoc - synth_assoc).abs()
    );
}
