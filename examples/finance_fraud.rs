//! Example II.2 from the paper, made concrete: Company A holds personal
//! attributes, Company B holds financial behaviour. They synthesize jointly
//! with SiloFuse, *share* the synthetic features post-generation to train a
//! fraud model independently — and audit the privacy cost of that sharing
//! with the three-attack benchmark (Table VI's methodology).
//!
//! ```bash
//! cargo run --release --example finance_fraud
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use silofuse_core::{SiloFuse, SiloFuseConfig, TrainBudget};
use silofuse_metrics::{privacy, utility, PrivacyConfig, UtilityConfig};
use silofuse_tabular::synthetic::{GeneratorConfig, Marginal, TaskKind};

fn customer_population() -> GeneratorConfig {
    GeneratorConfig {
        marginals: vec![
            // --- Company A: personal attributes ---
            ("age".into(), Marginal::Gaussian { mean: 41.0, std: 12.0 }),
            ("region".into(), Marginal::Categorical { weights: vec![4.0, 3.0, 2.0, 1.0] }),
            ("household".into(), Marginal::Categorical { weights: vec![5.0, 3.0, 2.0] }),
            ("tenure_years".into(), Marginal::Uniform { lo: 0.0, hi: 30.0 }),
            // --- Company B: financial behaviour ---
            ("income".into(), Marginal::LogNormal { mu: 10.8, sigma: 0.5 }),
            ("monthly_spend".into(), Marginal::LogNormal { mu: 7.2, sigma: 0.6 }),
            ("card_type".into(), Marginal::Categorical { weights: vec![6.0, 3.0, 1.0] }),
            ("late_payments".into(), Marginal::Categorical { weights: vec![8.0, 1.5, 0.5] }),
        ],
        task: TaskKind::Classification { classes: 2 }, // fraud flag
        correlation_strength: 0.65,
        seed: 99,
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let population = customer_population();
    let train = population.generate(2048, 1);
    let holdout = population.generate(768, 2);

    // Two silos: Company A gets the first 4 features (+ none of B's).
    let mut config = SiloFuseConfig::quick(99);
    config.n_clients = 2;
    config.model = TrainBudget::quick().latent_config(99);
    let mut model = SiloFuse::new(config);
    model.fit(&train, &mut rng);
    println!(
        "SiloFuse trained across Company A + Company B ({} bytes on the wire, {} round)",
        model.comm_stats().total_bytes(),
        model.comm_stats().rounds
    );

    // Post-generation sharing: both companies receive the full synthetic
    // table (the weaker-privacy scenario the paper quantifies in §V-F).
    let synthetic = model.synthesize(2048, &mut rng);

    // Downstream: train a fraud classifier purely on synthetic data and
    // evaluate against real held-out customers.
    let util = utility(&train, &synthetic, &holdout, &UtilityConfig::default());
    println!(
        "fraud-model utility: synthetic-trained reaches {:.1}% of real-trained performance \
         ({:.3} vs {:.3})",
        util.score, util.synthetic_performance, util.real_performance
    );

    // Privacy audit of the shared synthetic features: singling-out,
    // linkability (A's half vs B's half), attribute inference.
    let audit = privacy(&train, &synthetic, &PrivacyConfig::default());
    println!("privacy audit of the shared synthetic table (higher = safer):");
    println!("  singling-out resistance      {:.1}", audit.singling_out);
    println!("  linkability resistance       {:.1}", audit.linkability);
    println!("  attribute-inference resist.  {:.1}", audit.attribute_inference);
    println!("  composite                    {:.1}", audit.composite);
    println!(
        "(compare: sharing the REAL table instead would score {:.1})",
        privacy(&train, &train, &PrivacyConfig::default()).composite
    );
}
